//! Declarative scenario grids: the cross-product of scheduler
//! constructors, cluster shapes, workload sources, parameter overrides and
//! seeds, plus the deterministic parallel executor that turns a grid into
//! an aggregated [`GridReport`](crate::GridReport).

use std::sync::Arc;

use gfs_cluster::{Cluster, Node, Scheduler};
use gfs_market::MarketSpec;
use gfs_sched::{Chronus, Fgd, Lyra, YarnCs};
use gfs_sim::{RunSummary, SimConfig, SimReport};
use gfs_trace::{WorkloadConfig, WorkloadGenerator};
use gfs_types::{
    DynamicsPlan, Error, FailureDomain, GfsParams, GpuModel, NodeId, Result, SimDuration, SimTime,
    TaskSpec,
};

use gfs_sched::PlacementPolicy;

use crate::pool::{run_indexed, Threads};
use crate::report::{CellSummary, GridReport};

/// One homogeneous pool inside a [`ClusterShape`]: `nodes` machines of
/// `model` with `gpus_per_node` cards each.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeGroup {
    /// Node count of the pool.
    pub nodes: u32,
    /// Cards per node.
    pub gpus_per_node: u32,
    /// GPU model of every node in the pool.
    pub model: GpuModel,
}

/// A named cluster geometry a grid cell simulates: one or more
/// [`NodeGroup`] pools (a single group is the classic homogeneous
/// cluster; several model the paper's mixed-GPU production fleet of
/// Table 1). Node ids are assigned sequentially across groups in
/// declaration order.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterShape {
    /// Display label ("72n" / "287n" / "16a100+8h800" …).
    pub name: String,
    /// The pools, in node-id order.
    pub groups: Vec<NodeGroup>,
    /// Failure-domain topology: nodes per rack. When set, [`ClusterShape::build`]
    /// declares [`FailureDomain::racks`] on the cluster, so churn-aware
    /// placement policies can answer domain queries; `None` builds the
    /// classic topology-less cluster.
    pub rack_size: Option<u32>,
}

impl ClusterShape {
    /// A homogeneous A100 shape named after its node count.
    #[must_use]
    pub fn a100(nodes: u32, gpus_per_node: u32) -> Self {
        ClusterShape::homogeneous(GpuModel::A100, nodes, gpus_per_node).named(format!("{nodes}n"))
    }

    /// A homogeneous shape of any model, named `"<n><model>"`.
    #[must_use]
    pub fn homogeneous(model: GpuModel, nodes: u32, gpus_per_node: u32) -> Self {
        ClusterShape {
            name: format!("{nodes}{}", model.to_string().to_lowercase()),
            groups: vec![NodeGroup {
                nodes,
                gpus_per_node,
                model,
            }],
            rack_size: None,
        }
    }

    /// A heterogeneous shape from explicit pools, named by joining the
    /// groups (e.g. `"16a100+8h800"`).
    #[must_use]
    pub fn heterogeneous(groups: impl IntoIterator<Item = NodeGroup>) -> Self {
        let groups: Vec<NodeGroup> = groups.into_iter().collect();
        let name = groups
            .iter()
            .map(|g| format!("{}{}", g.nodes, g.model.to_string().to_lowercase()))
            .collect::<Vec<_>>()
            .join("+");
        ClusterShape {
            name,
            groups,
            rack_size: None,
        }
    }

    /// Appends one pool (builder style): `nodes` machines of `model` with
    /// `gpus_per_node` cards, taking the next node-id range.
    #[must_use]
    pub fn nodes_with_model(mut self, model: GpuModel, nodes: u32, gpus_per_node: u32) -> Self {
        self.groups.push(NodeGroup {
            nodes,
            gpus_per_node,
            model,
        });
        self
    }

    /// Overrides the display label.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Declares the failure-domain topology: racks of `rack_size` nodes,
    /// node ids split sequentially ([`FailureDomain::racks`]). Keep it
    /// consistent with the rack size any correlated
    /// [`DynamicsAxis`] of the same grid uses, so placement anticipates
    /// the blast radii the timeline actually exercises.
    #[must_use]
    pub fn racked(mut self, rack_size: u32) -> Self {
        self.rack_size = Some(rack_size);
        self
    }

    /// Total node count across all pools.
    #[must_use]
    pub fn node_count(&self) -> u32 {
        self.groups.iter().map(|g| g.nodes).sum()
    }

    /// Total cards of the shape, all pools.
    #[must_use]
    pub fn capacity_gpus(&self) -> f64 {
        self.groups
            .iter()
            .map(|g| f64::from(g.nodes * g.gpus_per_node))
            .sum()
    }

    /// Cards of one model's pools.
    #[must_use]
    pub fn capacity_gpus_of(&self, model: GpuModel) -> f64 {
        self.groups
            .iter()
            .filter(|g| g.model == model)
            .map(|g| f64::from(g.nodes * g.gpus_per_node))
            .sum()
    }

    /// The distinct GPU models, in group-declaration order.
    #[must_use]
    pub fn models(&self) -> Vec<GpuModel> {
        let mut out = Vec::new();
        for g in &self.groups {
            if !out.contains(&g.model) {
                out.push(g.model);
            }
        }
        out
    }

    /// Materialises the cluster: node ids run sequentially across groups,
    /// and a [`ClusterShape::racked`] shape declares its failure domains.
    #[must_use]
    pub fn build(&self) -> Cluster {
        let mut nodes = Vec::new();
        let mut next = 0u32;
        for g in &self.groups {
            for _ in 0..g.nodes {
                nodes.push(Node::new(NodeId::new(next), g.model, g.gpus_per_node));
                next += 1;
            }
        }
        let mut cluster = Cluster::new(nodes);
        if let Some(rack) = self.rack_size {
            cluster.set_failure_domains(&FailureDomain::racks(self.node_count(), rack));
        }
        cluster
    }
}

/// Everything a scheduler constructor may condition on: the cell's shape,
/// placement policy, parameter override and the run's seed.
#[derive(Debug, Clone)]
pub struct RunContext<'a> {
    /// Cluster shape of the cell.
    pub shape: &'a ClusterShape,
    /// Workload-axis label of the cell.
    pub workload: &'a str,
    /// Dynamics-axis label of the cell (`"none"` when no axis is
    /// declared).
    pub dynamics: &'a str,
    /// Market-axis label of the cell (`"none"` when no axis is declared).
    pub market: &'a str,
    /// Placement policy of the cell (naive when no axis is declared).
    /// Policy-capable constructors (the facade's `gfs::scenario` specs)
    /// pass it into their schedulers; baselines ignore it.
    pub policy: &'a PlacementPolicy,
    /// Parameter override of the cell.
    pub params: &'a GfsParams,
    /// Replication seed of this run.
    pub seed: u64,
}

type SchedulerFactory = dyn Fn(&RunContext<'_>) -> Box<dyn Scheduler> + Send + Sync;

/// A named scheduler constructor — one point on the grid's scheduler axis.
///
/// The factory runs once per grid run *inside* the worker thread, so
/// expensive constructors (e.g. training a GFS demand estimator) neither
/// block the submitting thread nor share state between runs.
#[derive(Clone)]
pub struct SchedulerSpec {
    name: String,
    build: Arc<SchedulerFactory>,
}

impl std::fmt::Debug for SchedulerSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SchedulerSpec({})", self.name)
    }
}

impl SchedulerSpec {
    /// Wraps a constructor closure under a display name.
    pub fn new(
        name: impl Into<String>,
        build: impl Fn(&RunContext<'_>) -> Box<dyn Scheduler> + Send + Sync + 'static,
    ) -> Self {
        SchedulerSpec {
            name: name.into(),
            build: Arc::new(build),
        }
    }

    /// The YARN-CS baseline.
    #[must_use]
    pub fn yarn_cs() -> Self {
        SchedulerSpec::new("YARN-CS", |_| Box::new(YarnCs::new()))
    }

    /// The Chronus baseline.
    #[must_use]
    pub fn chronus() -> Self {
        SchedulerSpec::new("Chronus", |_| Box::new(Chronus::new()))
    }

    /// The Lyra baseline.
    #[must_use]
    pub fn lyra() -> Self {
        SchedulerSpec::new("Lyra", |_| Box::new(Lyra::new()))
    }

    /// The FGD baseline.
    #[must_use]
    pub fn fgd() -> Self {
        SchedulerSpec::new("FGD", |_| Box::new(Fgd::new()))
    }

    /// The four baseline schedulers of §4.4, in paper order.
    #[must_use]
    pub fn baselines() -> Vec<Self> {
        vec![
            SchedulerSpec::yarn_cs(),
            SchedulerSpec::chronus(),
            SchedulerSpec::lyra(),
            SchedulerSpec::fgd(),
        ]
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Builds the scheduler for one run.
    #[must_use]
    pub fn build(&self, ctx: &RunContext<'_>) -> Box<dyn Scheduler> {
        (self.build)(ctx)
    }
}

type WorkloadFactory = dyn Fn(&ClusterShape, u64) -> Vec<TaskSpec> + Send + Sync;

/// A named task-trace source — one point on the grid's workload axis.
#[derive(Clone)]
pub struct WorkloadAxis {
    name: String,
    build: Arc<WorkloadFactory>,
}

impl std::fmt::Debug for WorkloadAxis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkloadAxis({})", self.name)
    }
}

impl WorkloadAxis {
    /// Wraps an arbitrary trace source (hand-built traces, replayed logs…).
    pub fn new(
        name: impl Into<String>,
        build: impl Fn(&ClusterShape, u64) -> Vec<TaskSpec> + Send + Sync + 'static,
    ) -> Self {
        WorkloadAxis {
            name: name.into(),
            build: Arc::new(build),
        }
    }

    /// A generated workload: `base` with its seed replaced by the run seed.
    #[must_use]
    pub fn generated(name: impl Into<String>, base: WorkloadConfig) -> Self {
        WorkloadAxis::new(name, move |_, seed| {
            WorkloadGenerator::new(WorkloadConfig {
                seed,
                ..base.clone()
            })
            .generate()
        })
    }

    /// A generated workload whose task counts are calibrated per shape so
    /// HP/spot submissions approximate the given fractions of cluster
    /// capacity over the horizon (see [`WorkloadConfig::sized_for`]).
    #[must_use]
    pub fn generated_sized(
        name: impl Into<String>,
        base: WorkloadConfig,
        hp_load: f64,
        spot_load: f64,
    ) -> Self {
        WorkloadAxis::new(name, move |shape, seed| {
            let cfg = WorkloadConfig {
                seed,
                ..base.clone()
            }
            .sized_for(shape.capacity_gpus(), hp_load, spot_load);
            WorkloadGenerator::new(cfg).generate()
        })
    }

    /// A *controlled* trace for like-for-like placement comparisons:
    /// fixed-size, fixed-duration HP tasks on a seeded jittered cadence
    /// (every `gang_every`-th a two-pod gang), plus checkpointed spot
    /// tasks — see [`UniformTrace`]. Generated workloads draw durations
    /// from a log-normal body scaled by request size, so *which* tasks a
    /// churny run displaces correlates with duration and JCT-over-subset
    /// metrics measure composition; a uniform trace gives every task one
    /// baseline, isolating the overhead a placement policy can actually
    /// influence.
    #[must_use]
    pub fn uniform(name: impl Into<String>, cfg: UniformTrace) -> Self {
        WorkloadAxis::new(name, move |_, seed| cfg.build(seed))
    }

    /// A generated workload for heterogeneous shapes: the configured task
    /// counts are split across the shape's distinct GPU models in
    /// proportion to each model's share of capacity, every sub-trace
    /// requests its own model (so all pools are exercised), and ids/seeds
    /// are offset per model so the merged trace is collision-free and
    /// deterministic. On a homogeneous shape this degenerates to one
    /// sub-trace of the shape's model.
    #[must_use]
    pub fn generated_mixed(name: impl Into<String>, base: WorkloadConfig) -> Self {
        WorkloadAxis::new(name, move |shape, seed| {
            let total = shape.capacity_gpus().max(1.0);
            let mut tasks = Vec::new();
            let mut start_id = base.start_id;
            for (k, model) in shape.models().into_iter().enumerate() {
                let share = shape.capacity_gpus_of(model) / total;
                let hp = ((base.hp_tasks as f64) * share).round() as usize;
                let spot = ((base.spot_tasks as f64) * share).round() as usize;
                if hp + spot == 0 {
                    continue;
                }
                let cfg = WorkloadConfig {
                    seed: seed.wrapping_add((k as u64) << 32),
                    gpu_model: model,
                    hp_tasks: hp,
                    spot_tasks: spot,
                    start_id,
                    ..base.clone()
                };
                let sub = WorkloadGenerator::new(cfg).generate();
                start_id += sub.len() as u64 + 1;
                tasks.extend(sub);
            }
            tasks
        })
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Builds the trace for one run.
    #[must_use]
    pub fn build(&self, shape: &ClusterShape, seed: u64) -> Vec<TaskSpec> {
        (self.build)(shape, seed)
    }
}

/// Parameters of [`WorkloadAxis::uniform`]: a controlled-duration trace
/// whose only per-seed variation is submit-time jitter, built for
/// isolating placement effects (policy ablations, golden pins).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformTrace {
    /// HP tasks submitted, one every `hp_cadence_secs`.
    pub hp_tasks: u32,
    /// Spot tasks submitted, one every `spot_cadence_secs`.
    pub spot_tasks: u32,
    /// Whole cards per pod (every task).
    pub gpus_per_pod: u32,
    /// Every `gang_every`-th HP task is a two-pod gang (0 = never).
    pub gang_every: u32,
    /// HP task duration, seconds (exact — no distribution).
    pub duration_secs: SimDuration,
    /// Spot task duration, seconds.
    pub spot_duration_secs: SimDuration,
    /// Seconds between HP submissions (jittered by up to 900 s).
    pub hp_cadence_secs: SimDuration,
    /// Seconds between spot submissions (jittered by up to 900 s).
    pub spot_cadence_secs: SimDuration,
    /// Checkpoint interval sold with the spot tasks, seconds.
    pub checkpoint_secs: SimDuration,
    /// Guaranteed duration sold with the spot tasks, seconds.
    pub guarantee_secs: SimDuration,
}

impl Default for UniformTrace {
    fn default() -> Self {
        UniformTrace {
            hp_tasks: 48,
            spot_tasks: 8,
            gpus_per_pod: 4,
            gang_every: 6,
            duration_secs: 6 * 3_600,
            spot_duration_secs: 4 * 3_600,
            hp_cadence_secs: 1_800,
            spot_cadence_secs: 10_800,
            checkpoint_secs: 1_800,
            guarantee_secs: 3_600,
        }
    }
}

impl UniformTrace {
    /// Materialises the trace for one seed. HP ids start at 1; spot ids
    /// start at `max(100, hp_tasks + 1)` so the ranges never collide.
    #[must_use]
    pub fn build(&self, seed: u64) -> Vec<TaskSpec> {
        // splitmix64 on (seed, i): deterministic per-task submit jitter
        let mix = |i: u64| {
            let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        };
        let mut tasks = Vec::with_capacity((self.hp_tasks + self.spot_tasks) as usize);
        for i in 0..u64::from(self.hp_tasks) {
            let gang = self.gang_every > 0
                && i % u64::from(self.gang_every) == u64::from(self.gang_every) - 1;
            tasks.push(
                TaskSpec::builder(1 + i)
                    .priority(gfs_types::Priority::Hp)
                    .pods(if gang { 2 } else { 1 })
                    .gpus_per_pod(gfs_types::GpuDemand::whole(self.gpus_per_pod))
                    .duration_secs(self.duration_secs)
                    .submit_at(SimTime::from_secs(i * self.hp_cadence_secs + mix(i) % 900))
                    .build()
                    .expect("valid HP task"),
            );
        }
        let spot_base = u64::from(self.hp_tasks + 1).max(100);
        for j in 0..u64::from(self.spot_tasks) {
            tasks.push(
                TaskSpec::builder(spot_base + j)
                    .priority(gfs_types::Priority::Spot)
                    .gpus_per_pod(gfs_types::GpuDemand::whole(self.gpus_per_pod))
                    .duration_secs(self.spot_duration_secs)
                    .checkpoint(gfs_types::CheckpointPlan::Periodic {
                        interval: self.checkpoint_secs,
                    })
                    .guarantee_secs(self.guarantee_secs)
                    .submit_at(SimTime::from_secs(
                        j * self.spot_cadence_secs + mix(1_000 + j) % 900,
                    ))
                    .build()
                    .expect("valid spot task"),
            );
        }
        tasks
    }
}

type DynamicsFactory = dyn Fn(&ClusterShape, u64) -> DynamicsPlan + Send + Sync;

/// A named cluster-timeline source — one point on the grid's dynamics
/// axis: independent churn, correlated rack failures, rolling maintenance
/// drains, autoscale schedules, or any hand-built composition.
///
/// Like every other axis, a `DynamicsAxis` must be a pure function of the
/// cell's shape and the run seed (see `gfs_types::cluster_event` for the
/// determinism rules); the dynamics seed is derived from the run seed, so
/// seed replication varies the churn along with the workload.
#[derive(Clone)]
pub struct DynamicsAxis {
    name: String,
    build: Arc<DynamicsFactory>,
}

impl std::fmt::Debug for DynamicsAxis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DynamicsAxis({})", self.name)
    }
}

impl DynamicsAxis {
    /// Wraps an arbitrary schedule source.
    pub fn new(
        name: impl Into<String>,
        build: impl Fn(&ClusterShape, u64) -> DynamicsPlan + Send + Sync + 'static,
    ) -> Self {
        DynamicsAxis {
            name: name.into(),
            build: Arc::new(build),
        }
    }

    /// The static-cluster axis point (the default when no axis is
    /// declared).
    #[must_use]
    pub fn none() -> Self {
        DynamicsAxis::new("none", |_, _| DynamicsPlan::none())
    }

    /// A seeded MTBF/MTTR renewal schedule over every node of the cell's
    /// shape: mean `mtbf_secs` between failures and `mttr_secs` to repair,
    /// generated until `horizon_secs` (usually the workload's submission
    /// horizon plus slack).
    #[must_use]
    pub fn mtbf(
        name: impl Into<String>,
        mtbf_secs: f64,
        mttr_secs: f64,
        horizon_secs: SimDuration,
    ) -> Self {
        DynamicsAxis::new(name, move |shape, seed| {
            DynamicsPlan::seeded_mtbf(shape.node_count(), mtbf_secs, mttr_secs, horizon_secs, seed)
        })
    }

    /// Correlated rack-level failures: the cell's nodes are split into
    /// [`FailureDomain`]s of `rack_size`, and each rack fails and
    /// recovers *as a unit* on a seeded `Exp(1/mtbf_secs)` /
    /// `Exp(1/mttr_secs)` renewal schedule — one SplitMix64 stream per
    /// `(seed, rack)` blast radius.
    #[must_use]
    pub fn correlated(
        name: impl Into<String>,
        rack_size: u32,
        mtbf_secs: f64,
        mttr_secs: f64,
        horizon_secs: SimDuration,
    ) -> Self {
        DynamicsAxis::new(name, move |shape, seed| {
            let domains = FailureDomain::racks(shape.node_count(), rack_size);
            DynamicsPlan::correlated(&domains, mtbf_secs, mttr_secs, horizon_secs, seed)
        })
    }

    /// A rolling maintenance wave over every node of the cell's shape:
    /// node `k` is drained at `start + k·stagger_secs` with
    /// `notice_secs` of warning and returns `maintenance_secs` after its
    /// forced shutdown. Closed-form — identical at every seed.
    #[must_use]
    pub fn rolling_drain(
        name: impl Into<String>,
        start: SimTime,
        stagger_secs: SimDuration,
        notice_secs: SimDuration,
        maintenance_secs: SimDuration,
    ) -> Self {
        DynamicsAxis::new(name, move |shape, _| {
            DynamicsPlan::rolling_drain(
                shape.node_count(),
                start,
                stagger_secs,
                notice_secs,
                maintenance_secs,
            )
        })
    }

    /// A step/periodic autoscale schedule: `nodes_per_step` fresh nodes
    /// matching the shape's *first* pool (model and cards per node) join
    /// at `start` and then every `interval_secs`, `steps` times in total.
    /// Closed-form — identical at every seed.
    #[must_use]
    pub fn autoscale(
        name: impl Into<String>,
        start: SimTime,
        interval_secs: SimDuration,
        steps: u32,
        nodes_per_step: u32,
    ) -> Self {
        DynamicsAxis::new(name, move |shape, _| {
            let Some(group) = shape.groups.first() else {
                return DynamicsPlan::none();
            };
            DynamicsPlan::scale_out(
                gfs_types::NodeTemplate {
                    model: group.model,
                    gpus: group.gpus_per_node,
                },
                start,
                interval_secs,
                steps,
                nodes_per_step,
            )
        })
    }

    /// A hand-built schedule applied identically at every seed (node ids
    /// must be valid for the shapes the grid pairs it with; events on
    /// unknown nodes are engine no-ops).
    #[must_use]
    pub fn fixed(name: impl Into<String>, plan: DynamicsPlan) -> Self {
        DynamicsAxis::new(name, move |_, _| plan.clone())
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Builds the schedule for one run.
    #[must_use]
    pub fn build(&self, shape: &ClusterShape, seed: u64) -> DynamicsPlan {
        (self.build)(shape, seed)
    }
}

/// Fault-only predecessor of [`DynamicsAxis`], kept so downstream call
/// sites keep compiling.
#[deprecated(
    note = "renamed to DynamicsAxis; the axis now also builds drains and autoscale schedules"
)]
pub type FaultAxis = DynamicsAxis;

/// A named [`PlacementPolicy`] — one point on the grid's placement-policy
/// axis. Grids without the axis run every cell with the naive policy
/// (labelled `"naive"`), which policy-capable schedulers treat as
/// placement-untouched; comparing axis points isolates what churn-aware
/// placement contributes under the same workload and cluster timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyAxis {
    /// Display label ("naive" / "spread" / "churn-aware" …).
    pub name: String,
    /// The policy cells on this axis point hand to their schedulers.
    pub policy: PlacementPolicy,
}

impl PolicyAxis {
    /// Wraps a policy under a display name.
    #[must_use]
    pub fn new(name: impl Into<String>, policy: PlacementPolicy) -> Self {
        PolicyAxis {
            name: name.into(),
            policy,
        }
    }

    /// The policy-less control row (the default when no axis is declared).
    #[must_use]
    pub fn naive() -> Self {
        PolicyAxis::new("naive", PlacementPolicy::naive())
    }

    /// Gang anti-affinity over failure domains only.
    #[must_use]
    pub fn domain_spread() -> Self {
        PolicyAxis::new("spread", PlacementPolicy::domain_spread())
    }

    /// Failure-history reliability scoring only.
    #[must_use]
    pub fn reliability() -> Self {
        PolicyAxis::new("reliability", PlacementPolicy::reliability_scored())
    }

    /// The full churn-aware policy: spread + reliability + drain
    /// awareness.
    #[must_use]
    pub fn churn_aware() -> Self {
        PolicyAxis::new("churn-aware", PlacementPolicy::churn_aware())
    }

    /// Churn-aware plus the decayed, domain-pooled reliability score and
    /// the preemptive-path reliability discount.
    #[must_use]
    pub fn hazard_aware() -> Self {
        PolicyAxis::new("hazard-aware", PlacementPolicy::hazard_aware())
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A named [`MarketSpec`] — one point on the grid's capacity-market axis.
///
/// Grids without the axis run every cell market-free (labelled `"none"`)
/// through the plain engine, byte-identical to pre-market grids; a
/// market point routes its cells through `gfs_market::run`, so the
/// spot-price process, the capacity controller and the cost meter are
/// live and the cost metrics appear in the cell summaries. Like every
/// axis, the spec must be a pure value — the per-run price streams are
/// derived from the run seed at execution time.
#[derive(Debug, Clone)]
pub struct MarketAxis {
    /// Display label ("none" / "fixed" / "shock3x" …).
    pub name: String,
    /// The market of cells on this axis point; `None` is the market-free
    /// control (cells run the plain engine).
    pub spec: Option<MarketSpec>,
}

impl MarketAxis {
    /// Wraps a market spec under a display name.
    #[must_use]
    pub fn new(name: impl Into<String>, spec: MarketSpec) -> Self {
        MarketAxis {
            name: name.into(),
            spec: Some(spec),
        }
    }

    /// The market-free control row (the default when no axis is
    /// declared).
    #[must_use]
    pub fn none() -> Self {
        MarketAxis {
            name: "none".to_string(),
            spec: None,
        }
    }

    /// Fixed-price passive accounting: bills whatever capacity the
    /// dynamics plan adds, decides nothing.
    #[must_use]
    pub fn fixed_price() -> Self {
        MarketAxis::new("fixed", MarketSpec::fixed_price())
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A named [`GfsParams`] override — one point on the grid's parameter axis.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamsAxis {
    /// Display label ("default", "H=4", …).
    pub name: String,
    /// The parameter set cells on this axis point use.
    pub params: GfsParams,
}

impl ParamsAxis {
    /// The Table 4 defaults under the label `default`.
    #[must_use]
    pub fn default_params() -> Self {
        ParamsAxis {
            name: "default".to_string(),
            params: GfsParams::default(),
        }
    }
}

/// One fully specified run: a grid cell at one seed.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Index of the owning cell in grid enumeration order.
    pub cell: usize,
    /// Scheduler constructor.
    pub scheduler: SchedulerSpec,
    /// Cluster geometry.
    pub shape: ClusterShape,
    /// Trace source.
    pub workload: WorkloadAxis,
    /// Cluster-timeline source.
    pub dynamics: DynamicsAxis,
    /// Capacity market.
    pub market: MarketAxis,
    /// Placement policy.
    pub policy: PolicyAxis,
    /// Parameter override.
    pub params: ParamsAxis,
    /// Replication seed.
    pub seed: u64,
}

impl Scenario {
    /// Executes the run: generate the trace and cluster timeline, build
    /// cluster and scheduler, simulate. Self-contained and deterministic
    /// given the scenario.
    #[must_use]
    pub fn execute(&self, sim: &SimConfig) -> SimReport {
        let ctx = RunContext {
            shape: &self.shape,
            workload: self.workload.name(),
            dynamics: self.dynamics.name(),
            market: self.market.name(),
            policy: &self.policy.policy,
            params: &self.params.params,
            seed: self.seed,
        };
        let tasks = self.workload.build(&self.shape, self.seed);
        let sim = SimConfig {
            dynamics: self.dynamics.build(&self.shape, self.seed),
            ..sim.clone()
        };
        let mut scheduler = self.scheduler.build(&ctx);
        match &self.market.spec {
            Some(spec) => gfs_market::run(
                self.shape.build(),
                scheduler.as_mut(),
                tasks,
                &sim,
                spec,
                self.seed,
            ),
            None => gfs_sim::run(self.shape.build(), scheduler.as_mut(), tasks, &sim),
        }
    }
}

/// Everything a grid run produces: the serialisable aggregated report plus
/// (when requested) the raw per-run [`SimReport`]s, `[cell][seed]`.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// Aggregated per-cell summaries (serialisable, thread-count
    /// independent).
    pub report: GridReport,
    /// Raw reports per cell per seed; empty unless
    /// [`Grid::keep_reports`] was set.
    pub sim_reports: Vec<Vec<SimReport>>,
}

/// The declarative experiment grid (C-BUILDER).
///
/// Axes default to "empty"; [`Grid::run`] fills the dynamics axis with
/// [`DynamicsAxis::none`], the market axis with [`MarketAxis::none`],
/// the policy axis with [`PolicyAxis::naive`],
/// the parameter axis with the Table 4 defaults and the seed axis with
/// `[1]` when unset. Invalid grids (missing
/// required axes, duplicate axis labels, an explicitly empty seed list)
/// are reported by [`Grid::validate`] / [`Grid::try_run`] as descriptive
/// errors; the panicking [`Grid::run`]/[`Grid::scenarios`] wrappers reuse
/// the same messages.
#[derive(Debug, Clone, Default)]
pub struct Grid {
    schedulers: Vec<SchedulerSpec>,
    shapes: Vec<ClusterShape>,
    workloads: Vec<WorkloadAxis>,
    dynamics: Vec<DynamicsAxis>,
    markets: Vec<MarketAxis>,
    policies: Vec<PolicyAxis>,
    params: Vec<ParamsAxis>,
    seeds: Vec<u64>,
    /// Whether `seeds()` was ever called (distinguishes "defaulted" from
    /// "explicitly empty", which is almost certainly a caller bug).
    seeds_set: bool,
    sim: Option<SimConfig>,
    keep_reports: bool,
}

impl Grid {
    /// An empty grid.
    #[must_use]
    pub fn new() -> Self {
        Grid::default()
    }

    /// Adds scheduler constructors.
    #[must_use]
    pub fn schedulers(mut self, specs: impl IntoIterator<Item = SchedulerSpec>) -> Self {
        self.schedulers.extend(specs);
        self
    }

    /// Adds one scheduler constructor.
    #[must_use]
    pub fn scheduler(mut self, spec: SchedulerSpec) -> Self {
        self.schedulers.push(spec);
        self
    }

    /// Adds cluster shapes.
    #[must_use]
    pub fn shapes(mut self, shapes: impl IntoIterator<Item = ClusterShape>) -> Self {
        self.shapes.extend(shapes);
        self
    }

    /// Adds one cluster shape.
    #[must_use]
    pub fn shape(mut self, shape: ClusterShape) -> Self {
        self.shapes.push(shape);
        self
    }

    /// Adds workload sources.
    #[must_use]
    pub fn workloads(mut self, axes: impl IntoIterator<Item = WorkloadAxis>) -> Self {
        self.workloads.extend(axes);
        self
    }

    /// Adds one workload source.
    #[must_use]
    pub fn workload(mut self, axis: WorkloadAxis) -> Self {
        self.workloads.push(axis);
        self
    }

    /// Adds cluster-timeline sources (each cell runs once per axis point;
    /// omitting the axis entirely means static-cluster runs).
    #[must_use]
    pub fn dynamics(mut self, axes: impl IntoIterator<Item = DynamicsAxis>) -> Self {
        self.dynamics.extend(axes);
        self
    }

    /// Adds one cluster-timeline source.
    #[must_use]
    pub fn dynamic(mut self, axis: DynamicsAxis) -> Self {
        self.dynamics.push(axis);
        self
    }

    /// Adds capacity-market points (each cell runs once per axis point;
    /// omitting the axis means market-free runs through the plain
    /// engine).
    #[must_use]
    pub fn markets(mut self, axes: impl IntoIterator<Item = MarketAxis>) -> Self {
        self.markets.extend(axes);
        self
    }

    /// Adds one capacity-market point.
    #[must_use]
    pub fn market(mut self, axis: MarketAxis) -> Self {
        self.markets.push(axis);
        self
    }

    /// Adds placement-policy points (each cell runs once per axis point;
    /// omitting the axis means naive-placement runs).
    #[must_use]
    pub fn policies(mut self, axes: impl IntoIterator<Item = PolicyAxis>) -> Self {
        self.policies.extend(axes);
        self
    }

    /// Adds one placement-policy point.
    #[must_use]
    pub fn policy(mut self, axis: PolicyAxis) -> Self {
        self.policies.push(axis);
        self
    }

    /// Adds cluster-timeline sources (pre-redesign name of
    /// [`Grid::dynamics`]).
    #[must_use]
    pub fn faults(self, axes: impl IntoIterator<Item = DynamicsAxis>) -> Self {
        self.dynamics(axes)
    }

    /// Adds one cluster-timeline source (pre-redesign name of
    /// [`Grid::dynamic`]).
    #[must_use]
    pub fn fault(self, axis: DynamicsAxis) -> Self {
        self.dynamic(axis)
    }

    /// Adds parameter overrides.
    #[must_use]
    pub fn params(mut self, axes: impl IntoIterator<Item = ParamsAxis>) -> Self {
        self.params.extend(axes);
        self
    }

    /// Sets the replication seeds (each cell runs once per seed).
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds_set = true;
        self.seeds.extend(seeds);
        self
    }

    /// Sets the simulation configuration shared by every run.
    #[must_use]
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.sim = Some(sim);
        self
    }

    /// Keep every raw [`SimReport`] in the result (memory-heavy; off by
    /// default).
    #[must_use]
    pub fn keep_reports(mut self, keep: bool) -> Self {
        self.keep_reports = keep;
        self
    }

    fn dynamics_axis(&self) -> Vec<DynamicsAxis> {
        if self.dynamics.is_empty() {
            vec![DynamicsAxis::none()]
        } else {
            self.dynamics.clone()
        }
    }

    fn market_axis(&self) -> Vec<MarketAxis> {
        if self.markets.is_empty() {
            vec![MarketAxis::none()]
        } else {
            self.markets.clone()
        }
    }

    fn params_axis(&self) -> Vec<ParamsAxis> {
        if self.params.is_empty() {
            vec![ParamsAxis::default_params()]
        } else {
            self.params.clone()
        }
    }

    fn policy_axis(&self) -> Vec<PolicyAxis> {
        if self.policies.is_empty() {
            vec![PolicyAxis::naive()]
        } else {
            self.policies.clone()
        }
    }

    fn seed_axis(&self) -> Vec<u64> {
        if self.seeds.is_empty() {
            vec![1]
        } else {
            self.seeds.clone()
        }
    }

    /// Checks the grid's inputs, returning a descriptive error for: a
    /// missing required axis (schedulers, shapes, workloads), a duplicate
    /// label within any axis (duplicate cells would silently shadow each
    /// other in [`GridReport::cell`] lookups), a duplicate seed, or an
    /// explicitly-empty seed list (`.seeds([])`).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] naming the offending axis/label.
    pub fn validate(&self) -> Result<()> {
        fn no_dupes<'a>(axis: &str, names: impl Iterator<Item = &'a str>) -> Result<()> {
            let mut seen: Vec<&str> = Vec::new();
            for n in names {
                if seen.contains(&n) {
                    return Err(Error::InvalidConfig(format!(
                        "duplicate {axis} label {n:?}: every {axis} axis point needs a distinct name"
                    )));
                }
                seen.push(n);
            }
            Ok(())
        }
        if self.schedulers.is_empty() {
            return Err(Error::InvalidConfig(
                "grid needs at least one scheduler".into(),
            ));
        }
        if self.shapes.is_empty() {
            return Err(Error::InvalidConfig(
                "grid needs at least one cluster shape".into(),
            ));
        }
        if self.workloads.is_empty() {
            return Err(Error::InvalidConfig(
                "grid needs at least one workload".into(),
            ));
        }
        if self.seeds_set && self.seeds.is_empty() {
            return Err(Error::InvalidConfig(
                "seeds([]) declares an empty replication axis; omit the call for the default seed [1]".into(),
            ));
        }
        no_dupes("scheduler", self.schedulers.iter().map(SchedulerSpec::name))?;
        no_dupes("shape", self.shapes.iter().map(|s| s.name.as_str()))?;
        no_dupes("workload", self.workloads.iter().map(WorkloadAxis::name))?;
        no_dupes("dynamics", self.dynamics.iter().map(DynamicsAxis::name))?;
        no_dupes("market", self.markets.iter().map(MarketAxis::name))?;
        no_dupes("policy", self.policies.iter().map(PolicyAxis::name))?;
        no_dupes("params", self.params.iter().map(|p| p.name.as_str()))?;
        let mut seen = Vec::new();
        for &s in &self.seeds {
            if seen.contains(&s) {
                return Err(Error::InvalidConfig(format!(
                    "duplicate seed {s}: replication seeds must be distinct"
                )));
            }
            seen.push(s);
        }
        Ok(())
    }

    /// Enumerates every run of the grid in deterministic order: cells
    /// nest (shape → workload → dynamics → market → policy → params →
    /// scheduler), each replicated over all seeds.
    ///
    /// # Errors
    ///
    /// See [`Grid::validate`].
    pub fn try_scenarios(&self) -> Result<Vec<Scenario>> {
        self.validate()?;
        let dynamics = self.dynamics_axis();
        let markets = self.market_axis();
        let policies = self.policy_axis();
        let params = self.params_axis();
        let seeds = self.seed_axis();
        let mut out = Vec::new();
        let mut cell = 0;
        for shape in &self.shapes {
            for workload in &self.workloads {
                for d in &dynamics {
                    for m in &markets {
                        for pol in &policies {
                            for p in &params {
                                for scheduler in &self.schedulers {
                                    for &seed in &seeds {
                                        out.push(Scenario {
                                            cell,
                                            scheduler: scheduler.clone(),
                                            shape: shape.clone(),
                                            workload: workload.clone(),
                                            dynamics: d.clone(),
                                            market: m.clone(),
                                            policy: pol.clone(),
                                            params: p.clone(),
                                            seed,
                                        });
                                    }
                                    cell += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Panicking wrapper of [`Grid::try_scenarios`].
    ///
    /// # Panics
    ///
    /// Panics with the [`Grid::validate`] message on an invalid grid.
    #[must_use]
    pub fn scenarios(&self) -> Vec<Scenario> {
        self.try_scenarios().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Number of cells (scenarios ÷ seeds).
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.schedulers.len()
            * self.shapes.len()
            * self.workloads.len()
            * self.dynamics_axis().len()
            * self.market_axis().len()
            * self.policy_axis().len()
            * self.params_axis().len()
    }

    /// Executes the whole grid on `threads` workers and aggregates each
    /// cell across its seeds.
    ///
    /// Results are collected by run index — never by completion order — so
    /// the report is byte-identical for any thread count.
    ///
    /// # Errors
    ///
    /// See [`Grid::validate`].
    ///
    /// # Panics
    ///
    /// Panics if a worker panics.
    pub fn try_run(&self, threads: Threads) -> Result<GridResult> {
        let scenarios = self.try_scenarios()?;
        let sim = self.sim.clone().unwrap_or_default();
        let keep = self.keep_reports;
        let outputs: Vec<(RunSummary, Option<SimReport>)> =
            run_indexed(scenarios.len(), threads, |i| {
                let report = scenarios[i].execute(&sim);
                let summary = report.summary();
                (summary, keep.then_some(report))
            });

        let seeds = self.seed_axis();
        let per_cell = seeds.len();
        let mut cells = Vec::with_capacity(self.cell_count());
        let mut sim_reports = Vec::new();
        for (cell_idx, chunk) in outputs.chunks(per_cell).enumerate() {
            let first = &scenarios[cell_idx * per_cell];
            let runs: Vec<RunSummary> = chunk.iter().map(|(s, _)| s.clone()).collect();
            cells.push(CellSummary::new(
                first.scheduler.name(),
                &first.shape.name,
                first.workload.name(),
                first.dynamics.name(),
                first.market.name(),
                first.policy.name(),
                &first.params.name,
                &seeds,
                runs,
            ));
            if keep {
                sim_reports.push(
                    chunk
                        .iter()
                        .map(|(_, r)| r.clone().expect("kept report present"))
                        .collect(),
                );
            }
        }
        Ok(GridResult {
            report: GridReport { cells },
            sim_reports,
        })
    }

    /// Panicking wrapper of [`Grid::try_run`].
    ///
    /// # Panics
    ///
    /// Panics with the [`Grid::validate`] message on an invalid grid, or
    /// if a worker panics.
    #[must_use]
    pub fn run(&self, threads: Threads) -> GridResult {
        self.try_run(threads).unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfs_types::HOUR;

    fn tiny_workload() -> WorkloadAxis {
        WorkloadAxis::generated(
            "tiny",
            WorkloadConfig {
                hp_tasks: 20,
                spot_tasks: 8,
                horizon_secs: 6 * HOUR,
                ..WorkloadConfig::default()
            },
        )
    }

    fn tiny_grid() -> Grid {
        Grid::new()
            .schedulers([SchedulerSpec::yarn_cs(), SchedulerSpec::fgd()])
            .shape(ClusterShape::a100(4, 8))
            .workload(tiny_workload())
            .seeds([1, 2, 3])
            .sim(SimConfig {
                max_time_secs: Some(48 * HOUR),
                ..SimConfig::default()
            })
    }

    #[test]
    fn enumeration_is_cells_times_seeds() {
        let grid = tiny_grid();
        let scenarios = grid.scenarios();
        assert_eq!(grid.cell_count(), 2);
        assert_eq!(scenarios.len(), 6);
        // seeds vary fastest, then schedulers
        assert_eq!(scenarios[0].scheduler.name(), "YARN-CS");
        assert_eq!(scenarios[0].seed, 1);
        assert_eq!(scenarios[2].seed, 3);
        assert_eq!(scenarios[3].scheduler.name(), "FGD");
        assert_eq!(scenarios[3].cell, 1);
    }

    #[test]
    fn parallel_equals_serial() {
        let grid = tiny_grid();
        let serial = grid.run(Threads::Fixed(1));
        let parallel = grid.run(Threads::Fixed(4));
        assert_eq!(
            serde_json::to_string(&serial.report).unwrap(),
            serde_json::to_string(&parallel.report).unwrap()
        );
    }

    #[test]
    fn kept_reports_align_with_cells() {
        let grid = tiny_grid().keep_reports(true);
        let result = grid.run(Threads::Fixed(2));
        assert_eq!(result.sim_reports.len(), 2);
        assert_eq!(result.sim_reports[0].len(), 3);
        assert_eq!(
            result.sim_reports[0][0].summary(),
            result.report.cells[0].runs[0]
        );
    }

    #[test]
    fn default_axes_fill_in() {
        let grid = Grid::new()
            .scheduler(SchedulerSpec::yarn_cs())
            .shape(ClusterShape::a100(2, 8))
            .workload(tiny_workload());
        let scenarios = grid.scenarios();
        assert_eq!(scenarios.len(), 1);
        assert_eq!(scenarios[0].seed, 1);
        assert_eq!(scenarios[0].params.name, "default");
    }

    #[test]
    #[should_panic(expected = "at least one scheduler")]
    fn empty_scheduler_axis_rejected() {
        let _ = Grid::new()
            .shape(ClusterShape::a100(2, 8))
            .workload(tiny_workload())
            .scenarios();
    }

    #[test]
    fn validation_reports_descriptive_errors() {
        let base = || {
            Grid::new()
                .scheduler(SchedulerSpec::yarn_cs())
                .shape(ClusterShape::a100(2, 8))
                .workload(tiny_workload())
        };
        assert!(base().validate().is_ok());
        let err = |g: Grid| g.validate().unwrap_err().to_string();
        assert!(err(Grid::new()).contains("at least one scheduler"));
        assert!(
            err(base().seeds(Vec::<u64>::new())).contains("empty replication axis"),
            "explicitly empty seed list must be rejected"
        );
        assert!(err(base().seeds([1, 2, 1])).contains("duplicate seed 1"));
        assert!(
            err(base().scheduler(SchedulerSpec::yarn_cs())).contains("duplicate scheduler label")
        );
        assert!(err(base().shape(ClusterShape::a100(2, 8))).contains("duplicate shape label"));
        assert!(err(base().workload(tiny_workload())).contains("duplicate workload label"));
        assert!(err(base()
            .dynamic(DynamicsAxis::none())
            .dynamic(DynamicsAxis::none()))
        .contains("duplicate dynamics label"));
        // try_run surfaces the same error instead of panicking
        assert!(Grid::new().try_run(Threads::Fixed(1)).is_err());
    }

    #[test]
    fn fault_axis_multiplies_cells_and_faulted_cells_report_churn() {
        let horizon = 48 * HOUR;
        let grid = Grid::new()
            .scheduler(SchedulerSpec::yarn_cs())
            .shape(ClusterShape::a100(4, 8))
            .workload(tiny_workload())
            .dynamics([
                DynamicsAxis::none(),
                DynamicsAxis::mtbf("churn", 6.0 * HOUR as f64, HOUR as f64, horizon),
            ])
            .seeds([1, 2])
            .sim(SimConfig {
                max_time_secs: Some(horizon),
                ..SimConfig::default()
            });
        assert_eq!(grid.cell_count(), 2);
        let result = grid.run(Threads::Fixed(2));
        let clean = result
            .report
            .cell_at("YARN-CS", "4n", "tiny", "none", "default")
            .unwrap();
        let churny = result
            .report
            .cell_at("YARN-CS", "4n", "tiny", "churn", "default")
            .unwrap();
        assert_eq!(clean.median("availability"), 1.0);
        assert_eq!(clean.median("displacement_count"), 0.0);
        assert!(
            churny.median("availability") < 1.0,
            "6 h MTBF over 2 days must bite"
        );
        assert!(churny.metric("displacement_count").unwrap().max > 0.0);
    }

    #[test]
    fn drain_correlated_and_autoscale_axes_report_their_metrics() {
        let horizon = 48 * HOUR;
        let grid = Grid::new()
            .scheduler(SchedulerSpec::yarn_cs())
            .shape(ClusterShape::a100(4, 8))
            .workload(tiny_workload())
            .dynamics([
                DynamicsAxis::rolling_drain(
                    "wave",
                    gfs_types::SimTime::from_hours(1),
                    HOUR,
                    1_800,
                    HOUR,
                ),
                DynamicsAxis::correlated("racks", 2, 8.0 * HOUR as f64, HOUR as f64, horizon),
                DynamicsAxis::autoscale("grow", gfs_types::SimTime::from_hours(2), HOUR, 2, 1),
            ])
            .seeds([1, 2])
            .sim(SimConfig {
                max_time_secs: Some(horizon),
                ..SimConfig::default()
            });
        assert_eq!(grid.cell_count(), 3);
        let result = grid.run(Threads::Fixed(2));
        let cell = |d: &str| {
            result
                .report
                .cell_at("YARN-CS", "4n", "tiny", d, "default")
                .unwrap()
        };
        let wave = cell("wave");
        assert_eq!(wave.median("node_drains"), 4.0, "every node drained once");
        assert!(
            wave.metric("migration_count").is_some(),
            "drain metrics surface"
        );
        let racks = cell("racks");
        assert!(
            racks.median("availability") < 1.0,
            "8 h domain MTBF over 2 days bites"
        );
        assert!(
            racks.metric("node_drains").is_none(),
            "no drain rows without drains"
        );
        let grow = cell("grow");
        assert_eq!(grow.median("added_gpus"), 16.0, "two 8-card steps");
        assert_eq!(grow.median("availability"), 1.0);
    }

    #[test]
    fn heterogeneous_shape_builds_mixed_cluster_and_mixed_workload() {
        let shape = ClusterShape::heterogeneous([
            NodeGroup {
                nodes: 3,
                gpus_per_node: 8,
                model: GpuModel::A100,
            },
            NodeGroup {
                nodes: 1,
                gpus_per_node: 8,
                model: GpuModel::H800,
            },
        ]);
        assert_eq!(shape.name, "3a100+1h800");
        assert_eq!(shape.node_count(), 4);
        assert_eq!(shape.capacity_gpus(), 32.0);
        assert_eq!(shape.capacity_gpus_of(GpuModel::H800), 8.0);
        assert_eq!(shape.models(), vec![GpuModel::A100, GpuModel::H800]);
        let cluster = shape.build();
        assert_eq!(cluster.capacity(Some(GpuModel::A100)), 24.0);
        assert_eq!(cluster.capacity(Some(GpuModel::H800)), 8.0);
        assert_eq!(cluster.nodes()[3].model(), GpuModel::H800);
        // the mixed workload requests both models, split by capacity share
        let axis = WorkloadAxis::generated_mixed(
            "mixed",
            WorkloadConfig {
                hp_tasks: 40,
                spot_tasks: 12,
                horizon_secs: 6 * HOUR,
                ..WorkloadConfig::default()
            },
        );
        let tasks = axis.build(&shape, 1);
        let a100 = tasks
            .iter()
            .filter(|t| t.gpu_model == GpuModel::A100)
            .count();
        let h800 = tasks
            .iter()
            .filter(|t| t.gpu_model == GpuModel::H800)
            .count();
        assert!(a100 > 0 && h800 > 0, "both pools exercised ({a100}/{h800})");
        assert!(a100 > h800, "counts follow the capacity split");
        // no id collisions across sub-traces
        let mut ids: Vec<u64> = tasks.iter().map(|t| t.id.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), tasks.len());
        // builder-style append works too
        let grown = ClusterShape::a100(2, 8).nodes_with_model(GpuModel::A800, 2, 8);
        assert_eq!(grown.node_count(), 4);
        assert_eq!(grown.capacity_gpus_of(GpuModel::A800), 16.0);
    }

    #[test]
    fn policy_axis_multiplies_cells_and_labels_rows() {
        let grid = tiny_grid().policies([PolicyAxis::naive(), PolicyAxis::churn_aware()]);
        assert_eq!(grid.cell_count(), 4);
        let scenarios = grid.scenarios();
        assert_eq!(scenarios.len(), 12);
        // policy nests outside params/scheduler
        assert!(scenarios[0].policy.policy.is_naive());
        assert!(!scenarios[6].policy.policy.is_naive());
        let result = grid.run(Threads::Fixed(2));
        let json = result.report.to_json();
        assert!(json.contains("\"policy\":\"churn-aware\""));
        // the naive rows skip the field entirely (historical encoding)
        assert_eq!(json.matches("\"policy\"").count(), 2);
        let cell = result
            .report
            .cell_full("YARN-CS", "4n", "tiny", "none", "churn-aware", "default")
            .expect("policy lookup");
        assert_eq!(cell.policy_label(), "churn-aware");
        // duplicate policy labels are rejected like every other axis
        let err = tiny_grid()
            .policies([PolicyAxis::naive(), PolicyAxis::naive()])
            .validate()
            .unwrap_err()
            .to_string();
        assert!(err.contains("duplicate policy label"), "{err}");
    }

    #[test]
    fn market_axis_multiplies_cells_and_meters_costs() {
        use gfs_market::{ForecastParams, MarketSpec};
        let grid = Grid::new()
            .scheduler(SchedulerSpec::yarn_cs())
            .shape(ClusterShape::a100(1, 8))
            .workload(tiny_workload())
            .markets([
                MarketAxis::none(),
                MarketAxis::new("buyer", MarketSpec::forecast(ForecastParams::default())),
            ])
            .seeds([1, 2])
            .sim(SimConfig {
                max_time_secs: Some(48 * HOUR),
                ..SimConfig::default()
            });
        assert_eq!(grid.cell_count(), 2);
        let result = grid.run(Threads::Fixed(2));
        let free = result
            .report
            .cell_full("YARN-CS", "1n", "tiny", "none", "naive", "default")
            .expect("market-free cell");
        assert_eq!(free.market_label(), "none");
        assert!(
            free.metric("market_spend_usd").is_none(),
            "no cost rows without a market"
        );
        let bought = result
            .report
            .cells
            .iter()
            .find(|c| c.market_label() == "buyer")
            .expect("market cell");
        assert!(
            bought.median("market_spend_usd") > 0.0,
            "the 1-node cluster forces the controller to buy"
        );
        assert!(bought.median("gpu_hours_bought") > 0.0);
        // the market label rides the wire; the free cell stays unlabelled
        let json = result.report.to_json();
        assert_eq!(json.matches("\"market\"").count(), 1);
        // duplicate market labels are rejected like every other axis
        let err = tiny_grid()
            .markets([MarketAxis::none(), MarketAxis::none()])
            .validate()
            .unwrap_err()
            .to_string();
        assert!(err.contains("duplicate market label"), "{err}");
    }

    #[test]
    fn policy_free_grid_keeps_historical_encoding() {
        let with_default_axis = tiny_grid().run(Threads::Fixed(1)).report.to_json();
        assert!(
            !with_default_axis.contains("\"policy\""),
            "the naive default must stay invisible on the wire"
        );
    }

    #[test]
    fn racked_shape_declares_failure_domains() {
        let plain = ClusterShape::a100(6, 8).build();
        assert_eq!(plain.failure_domain_count(), 0);
        let racked = ClusterShape::a100(6, 8).racked(2).build();
        assert_eq!(racked.failure_domain_count(), 3);
        assert_eq!(racked.domain_of(NodeId::new(5)), Some(2));
    }

    #[test]
    fn uniform_trace_is_seed_deterministic_and_structured() {
        let cfg = UniformTrace::default();
        let a = cfg.build(7);
        let b = cfg.build(7);
        assert_eq!(a, b, "same seed, same trace");
        assert_ne!(cfg.build(8), a, "jitter varies with the seed");
        assert_eq!(a.len(), 56);
        // every duration is exact; every sixth HP task is a 2-pod gang
        let hp: Vec<_> = a.iter().filter(|t| t.priority.is_hp()).collect();
        assert_eq!(hp.len(), 48);
        assert!(hp.iter().all(|t| t.duration_secs == 6 * 3_600));
        assert_eq!(hp.iter().filter(|t| t.pods == 2).count(), 8);
        let spot: Vec<_> = a.iter().filter(|t| t.priority.is_spot()).collect();
        assert_eq!(spot.len(), 8);
        assert!(spot.iter().all(|t| t.duration_secs == 4 * 3_600));
        // no id collisions across the two ranges
        let mut ids: Vec<u64> = a.iter().map(|t| t.id.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), a.len());
    }

    #[test]
    fn shape_helpers() {
        let s = ClusterShape::a100(16, 8).named("pool");
        assert_eq!(s.name, "pool");
        assert_eq!(s.capacity_gpus(), 128.0);
        assert_eq!(s.build().capacity(None), 128.0);
        let h = ClusterShape::homogeneous(GpuModel::H800, 4, 8);
        assert_eq!(h.name, "4h800");
    }
}
