//! A small std-only work pool for embarrassingly parallel experiment runs.
//!
//! Jobs are identified by index; workers pull chunks of indices from a
//! shared [`VecDeque`] (chunked self-scheduling — the cheap cousin of work
//! stealing) and every result is written back into the slot of its *job
//! index*, never in completion order. Output is therefore byte-identical
//! to a serial run regardless of the thread count, as long as each job is
//! itself deterministic and self-contained.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::Mutex;

/// How many worker threads an experiment run may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// One worker per available core ([`std::thread::available_parallelism`]).
    #[default]
    Auto,
    /// Exactly this many workers (`0` behaves like `1`).
    Fixed(usize),
}

impl Threads {
    /// Resolves to a concrete worker count (≥ 1).
    #[must_use]
    pub fn count(self) -> usize {
        match self {
            Threads::Auto => std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
            Threads::Fixed(n) => n.max(1),
        }
    }
}

/// Runs `job(0..n)` across `threads` workers and returns the results in
/// job-index order. With one worker (or `n <= 1`) everything runs on the
/// calling thread; the result vector is identical either way.
///
/// # Panics
///
/// Propagates a panic from any job (the pool itself never panics).
pub fn run_indexed<R, F>(n: usize, threads: Threads, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.count().min(n.max(1));
    if workers <= 1 {
        return (0..n).map(job).collect();
    }

    // Small chunks keep load balanced when job costs vary wildly (a GFS
    // cell trains a forecaster; a YARN-CS cell doesn't); the per-chunk
    // locking cost is trivial next to a simulation run.
    let chunk = (n / (workers * 8)).max(1);
    let queue: Mutex<VecDeque<Range<usize>>> = Mutex::new(
        (0..n)
            .step_by(chunk)
            .map(|start| start..(start + chunk).min(n))
            .collect(),
    );

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let results = Mutex::new(slots);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let Some(range) = queue.lock().expect("queue lock").pop_front() else {
                    return;
                };
                for i in range {
                    let r = job(i);
                    results.lock().expect("results lock")[i] = Some(r);
                }
            });
        }
    });

    results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|r| r.expect("every job index was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processes_every_index_in_order() {
        for threads in [Threads::Fixed(1), Threads::Fixed(4), Threads::Auto] {
            let out = run_indexed(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run_indexed(37, Threads::Fixed(1), |i| format!("job-{i}"));
        let parallel = run_indexed(37, Threads::Fixed(8), |i| format!("job-{i}"));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single() {
        assert!(run_indexed(0, Threads::Auto, |i| i).is_empty());
        assert_eq!(run_indexed(1, Threads::Fixed(8), |i| i + 1), vec![1]);
    }

    #[test]
    fn more_threads_than_jobs() {
        assert_eq!(run_indexed(3, Threads::Fixed(64), |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn auto_resolves_positive() {
        assert!(Threads::Auto.count() >= 1);
        assert_eq!(Threads::Fixed(0).count(), 1);
    }
}
