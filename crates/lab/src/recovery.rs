//! Crash-injection harness for the crash-safe
//! [`ClusterService`](gfs_sim::ClusterService).
//!
//! One experiment runs the same fully-specified [`Scenario`] twice:
//!
//! 1. **Golden** — uninterrupted, journal on, admissions at fixed batch
//!    boundaries; yields a report fingerprint and a final state hash.
//! 2. **Victim** — same loop, but a background checkpointer snapshots
//!    every [`CrashPlan::snapshot_every`] batches and the controller is
//!    killed at the [`CrashPoint`]. Recovery rebuilds a service from the
//!    last good snapshot (or from nothing), replays the write-ahead
//!    journal suffix, resumes, and finishes.
//!
//! The harness asserts nothing itself; it reports both fingerprints in a
//! [`RecoveryOutcome`] so callers (the `lab_recovery` bin, tests) can
//! require [`RecoveryOutcome::matches`] across a grid of schedulers ×
//! dynamics × crash points × seeds.
//!
//! Determinism rests on two rules shared by every run:
//!
//! * admissions happen only at batch boundaries, keyed on the service's
//!   [`steps`](gfs_sim::ClusterService::steps) counter — the same anchor
//!   journal records replay against;
//! * the late wave (when [`CrashPlan::admit_late_after`] is set) is the
//!   trailing third of the trace, admitted once when the counter reaches
//!   the boundary — before the crash it lands in the journal, after the
//!   crash the resumed loop admits it at the same boundary.

use gfs_cluster::{Cluster, Scheduler};
use gfs_sim::{report_hash, ClusterService, ServiceSnapshot, SimConfig};
use gfs_types::{SimTime, TaskSpec};

use crate::{RunContext, Scenario};

/// Where the controller is killed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Kill after this many processed event batches.
    AfterEvents(u64),
    /// Kill at the first batch boundary at or past this simulated time.
    AtTime(SimTime),
    /// Begin writing a snapshot after this many batches and kill
    /// mid-write: the torn snapshot must be rejected and recovery must
    /// fall back to the previous good one (or the journal alone).
    MidSnapshot(u64),
}

impl CrashPoint {
    /// Short display label ("ev17" / "t3600" / "snap!9").
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            CrashPoint::AfterEvents(n) => format!("ev{n}"),
            CrashPoint::AtTime(t) => format!("t{}", t.as_secs()),
            CrashPoint::MidSnapshot(n) => format!("snap!{n}"),
        }
    }

    fn due(&self, svc: &ClusterService) -> bool {
        match *self {
            CrashPoint::AfterEvents(n) | CrashPoint::MidSnapshot(n) => svc.steps() >= n,
            CrashPoint::AtTime(t) => svc.now() >= t,
        }
    }
}

/// A full crash experiment: when to kill, how often the background
/// checkpointer snapshots, where the late admission wave lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// The kill site.
    pub point: CrashPoint,
    /// Snapshot cadence in event batches; 0 disables the checkpointer,
    /// forcing journal-only recovery.
    pub snapshot_every: u64,
    /// Batch boundary at which the trailing third of the trace is
    /// admitted mid-run (`None`: the whole trace is admitted up front).
    pub admit_late_after: Option<u64>,
}

impl CrashPlan {
    /// A plan with a checkpointer every `every` batches and a late wave
    /// at batch 5, killed at `point`.
    #[must_use]
    pub fn new(point: CrashPoint, every: u64) -> Self {
        CrashPlan {
            point,
            snapshot_every: every,
            admit_late_after: Some(5),
        }
    }
}

/// What one crash+recover experiment produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Report fingerprint of the uninterrupted run.
    pub golden_report: u64,
    /// Final state hash of the uninterrupted run.
    pub golden_state: u64,
    /// Report fingerprint of the crash-recovered run.
    pub recovered_report: u64,
    /// Final state hash of the crash-recovered run.
    pub recovered_state: u64,
    /// Batch counter at the kill.
    pub crashed_at_step: u64,
    /// Simulated time at the kill.
    pub crashed_at: SimTime,
    /// Whether recovery started from a snapshot (vs the journal alone).
    pub used_snapshot: bool,
    /// For [`CrashPoint::MidSnapshot`]: whether the torn snapshot was
    /// rejected by the parser, as it must be. `None` for other points.
    pub torn_snapshot_rejected: Option<bool>,
    /// Journal records re-applied during recovery.
    pub replayed: usize,
    /// Journal records skipped as already inside the snapshot.
    pub skipped: usize,
}

impl RecoveryOutcome {
    /// The experiment's verdict: the recovered run must reproduce the
    /// golden report and final state exactly, and a torn snapshot (when
    /// the plan produced one) must have been rejected.
    #[must_use]
    pub fn matches(&self) -> bool {
        self.golden_report == self.recovered_report
            && self.golden_state == self.recovered_state
            && self.torn_snapshot_rejected != Some(false)
    }
}

/// The deterministic inputs of one experiment, built once and cloned
/// into the golden and victim runs.
struct Inputs {
    cluster: Cluster,
    sim: SimConfig,
    initial: Vec<TaskSpec>,
    late: Vec<TaskSpec>,
}

fn build_inputs(scenario: &Scenario, sim: &SimConfig, plan: &CrashPlan) -> Inputs {
    let tasks = scenario.workload.build(&scenario.shape, scenario.seed);
    let sim = SimConfig {
        dynamics: scenario.dynamics.build(&scenario.shape, scenario.seed),
        ..sim.clone()
    };
    let (initial, late) = match plan.admit_late_after {
        Some(_) if tasks.len() >= 3 => {
            let cut = tasks.len() - tasks.len() / 3;
            (tasks[..cut].to_vec(), tasks[cut..].to_vec())
        }
        _ => (tasks, Vec::new()),
    };
    Inputs {
        cluster: scenario.shape.build(),
        sim,
        initial,
        late,
    }
}

fn build_scheduler(scenario: &Scenario) -> Box<dyn Scheduler> {
    let ctx = RunContext {
        shape: &scenario.shape,
        workload: scenario.workload.name(),
        dynamics: scenario.dynamics.name(),
        market: scenario.market.name(),
        policy: &scenario.policy.policy,
        params: &scenario.params.params,
        seed: scenario.seed,
    };
    scenario.scheduler.build(&ctx)
}

/// Admits the late wave if its boundary has been reached. Returns the
/// wave onward when still pending.
fn admit_late_if_due(
    svc: &mut ClusterService,
    late: Option<Vec<TaskSpec>>,
    boundary: u64,
) -> Option<Vec<TaskSpec>> {
    match late {
        Some(wave) if svc.steps() >= boundary => {
            svc.admit_tasks(wave);
            None
        }
        other => other,
    }
}

/// Runs a service to completion, admitting the late wave at its
/// boundary (or, if the run drains early, immediately — both loops share
/// this rule, so golden and recovered runs agree).
fn drive_to_end(
    svc: &mut ClusterService,
    sched: &mut dyn Scheduler,
    mut late: Option<Vec<TaskSpec>>,
    boundary: u64,
) {
    loop {
        late = admit_late_if_due(svc, late, boundary);
        if !svc.step(sched) {
            match late.take() {
                Some(wave) => svc.admit_tasks(wave),
                None => break,
            }
        }
    }
}

/// Runs one crash+recover experiment for `scenario` under `plan` and
/// reports both fingerprints. See the [module docs](self) for the
/// protocol.
#[must_use]
pub fn crash_and_recover(
    scenario: &Scenario,
    sim: &SimConfig,
    plan: &CrashPlan,
) -> RecoveryOutcome {
    let inputs = build_inputs(scenario, sim, plan);
    let boundary = plan.admit_late_after.unwrap_or(0);

    // golden: the uninterrupted run
    let mut golden_sched = build_scheduler(scenario);
    let mut golden = ClusterService::new(inputs.cluster.clone(), inputs.sim.clone());
    golden.enable_journal();
    golden.admit_tasks(inputs.initial.clone());
    golden.start();
    let late = (!inputs.late.is_empty()).then(|| inputs.late.clone());
    drive_to_end(&mut golden, golden_sched.as_mut(), late, boundary);
    let golden_state = golden.snapshot(golden_sched.as_ref()).state_hash();
    let golden_report = report_hash(&golden.finish());

    // victim: same loop, checkpointer on, killed at the crash point
    let mut victim_sched = build_scheduler(scenario);
    let mut victim = ClusterService::new(inputs.cluster.clone(), inputs.sim.clone());
    victim.enable_journal();
    victim.admit_tasks(inputs.initial.clone());
    victim.start();
    let mut late = (!inputs.late.is_empty()).then(|| inputs.late.clone());
    let mut last_good: Option<ServiceSnapshot> = None;
    let mut drained = false;
    loop {
        late = admit_late_if_due(&mut victim, late, boundary);
        if plan.point.due(&victim) {
            break;
        }
        if !victim.step(victim_sched.as_mut()) {
            match late.take() {
                Some(wave) => victim.admit_tasks(wave),
                None => {
                    drained = true; // finished before the crash point
                    break;
                }
            }
            continue;
        }
        if plan.snapshot_every > 0 && victim.steps().is_multiple_of(plan.snapshot_every) {
            last_good = Some(victim.snapshot(victim_sched.as_ref()));
        }
    }
    let crashed_at_step = victim.steps();
    let crashed_at = victim.now();
    let late_was_admitted = late.is_none();

    // the kill: for MidSnapshot the in-flight snapshot write tears; the
    // parser must reject the half-written file
    let torn_snapshot_rejected = match plan.point {
        CrashPoint::MidSnapshot(_) if !drained => {
            let full = victim.snapshot(victim_sched.as_ref()).to_json();
            let torn = &full[..full.len() / 2];
            Some(ServiceSnapshot::from_json(torn).is_err())
        }
        _ => None,
    };
    let journal_text = victim
        .journal()
        .expect("victim journal is enabled")
        .text()
        .to_string();
    drop(victim);
    drop(victim_sched);

    // recovery: last good snapshot + journal suffix, or journal alone
    let mut rec_sched = build_scheduler(scenario);
    let used_snapshot = last_good.is_some();
    let mut recovered = match last_good {
        Some(snap) => ClusterService::restore(snap, rec_sched.as_mut())
            .expect("a checkpointer snapshot restores"),
        None => ClusterService::new(inputs.cluster.clone(), inputs.sim.clone()),
    };
    recovered.enable_journal();
    let replay = recovered.replay_journal(&journal_text, rec_sched.as_mut());
    assert!(
        replay.rejected.is_none(),
        "an intact journal replays cleanly: {:?}",
        replay.rejected
    );
    let late = (!late_was_admitted).then(|| inputs.late.clone());
    drive_to_end(&mut recovered, rec_sched.as_mut(), late, boundary);
    let recovered_state = recovered.snapshot(rec_sched.as_ref()).state_hash();
    let recovered_report = report_hash(&recovered.finish());

    RecoveryOutcome {
        golden_report,
        golden_state,
        recovered_report,
        recovered_state,
        crashed_at_step,
        crashed_at,
        used_snapshot,
        torn_snapshot_rejected,
        replayed: replay.applied,
        skipped: replay.skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        ClusterShape, DynamicsAxis, MarketAxis, ParamsAxis, PolicyAxis, SchedulerSpec, WorkloadAxis,
    };
    use gfs_types::HOUR;

    fn scenario(dynamics: DynamicsAxis, seed: u64) -> Scenario {
        Scenario {
            cell: 0,
            scheduler: SchedulerSpec::yarn_cs(),
            shape: ClusterShape::a100(4, 8),
            workload: WorkloadAxis::generated(
                "steady",
                gfs_trace::WorkloadConfig {
                    hp_tasks: 18,
                    spot_tasks: 6,
                    horizon_secs: 4 * HOUR,
                    ..gfs_trace::WorkloadConfig::default()
                },
            ),
            dynamics,
            market: MarketAxis::none(),
            policy: PolicyAxis::naive(),
            params: ParamsAxis::default_params(),
            seed,
        }
    }

    fn sim() -> SimConfig {
        SimConfig {
            max_time_secs: Some(48 * HOUR),
            ..SimConfig::default()
        }
    }

    #[test]
    fn crash_recover_matches_golden_across_points() {
        let s = scenario(DynamicsAxis::none(), 1);
        for point in [
            CrashPoint::AfterEvents(7),
            CrashPoint::AtTime(SimTime::from_hours(1)),
            CrashPoint::MidSnapshot(11),
        ] {
            let out = crash_and_recover(&s, &sim(), &CrashPlan::new(point, 4));
            assert!(out.matches(), "{point:?}: {out:?}");
            assert!(out.used_snapshot, "{point:?} crashes past the cadence");
        }
    }

    #[test]
    fn journal_only_recovery_and_mid_snapshot_tear() {
        let s = scenario(
            DynamicsAxis::rolling_drain("wave", SimTime::from_hours(1), HOUR / 2, 1_800, HOUR),
            2,
        );
        // no checkpointer: the journal alone must reproduce the run
        let plan = CrashPlan {
            point: CrashPoint::AfterEvents(9),
            snapshot_every: 0,
            admit_late_after: Some(5),
        };
        let out = crash_and_recover(&s, &sim(), &plan);
        assert!(out.matches(), "{out:?}");
        assert!(!out.used_snapshot);
        assert!(out.replayed >= 3, "tasks + start + late wave: {out:?}");
        // a torn mid-write snapshot is rejected, never restored
        let out = crash_and_recover(&s, &sim(), &CrashPlan::new(CrashPoint::MidSnapshot(13), 6));
        assert!(out.matches(), "{out:?}");
        assert_eq!(out.torn_snapshot_rejected, Some(true));
    }

    #[test]
    fn crash_before_late_wave_still_admits_it() {
        let s = scenario(DynamicsAxis::none(), 3);
        let plan = CrashPlan {
            point: CrashPoint::AfterEvents(2),
            snapshot_every: 0,
            admit_late_after: Some(5),
        };
        let out = crash_and_recover(&s, &sim(), &plan);
        assert!(out.matches(), "{out:?}");
        assert!(out.crashed_at_step <= 2, "killed before the wave landed");
    }
}
