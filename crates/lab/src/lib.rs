//! Parallel, deterministic experiment orchestration for the GFS simulator.
//!
//! A single simulation answers one question about one scheduler on one
//! workload; the paper's evaluation — and any credible scheduling claim —
//! is a *matrix* of runs: schedulers × cluster shapes × workload mixes ×
//! parameter settings × seeds. This crate turns the single-run simulator
//! into that experiment engine:
//!
//! * [`Grid`] — a declarative builder enumerating the cross-product of
//!   [`SchedulerSpec`] constructors, [`ClusterShape`]s (homogeneous or
//!   mixed-GPU via [`NodeGroup`] pools, optionally
//!   [`ClusterShape::racked`] into failure domains), [`WorkloadAxis`]
//!   trace sources, [`DynamicsAxis`] cluster timelines (independent
//!   churn, correlated rack failures, rolling maintenance drains,
//!   autoscale schedules), [`MarketAxis`] capacity markets (spot-price
//!   processes plus forecast-driven autoscaling controllers, metered
//!   into the §4.3 cost metrics), [`PolicyAxis`] placement policies (naive /
//!   domain-spread / reliability-scored / churn-aware), [`ParamsAxis`]
//!   overrides and replication seeds.
//! * [`pool`] — a std-only chunked work pool executing runs in parallel
//!   while collecting results *by run index*, so the aggregated output is
//!   byte-identical to a serial run for any thread count.
//! * [`agg`] — across-seed reduction of per-run
//!   [`RunSummary`](gfs_sim::RunSummary)s into median / IQR / min / max
//!   [`MetricStats`].
//! * [`GridReport`] — canonical JSON emission plus aligned text tables.
//! * [`recovery`] — a crash-injection harness over the crash-safe
//!   [`ClusterService`](gfs_sim::ClusterService): kill a run at a chosen
//!   point, recover from snapshot + write-ahead journal, and compare
//!   fingerprints against the uninterrupted golden run.
//!
//! # Quickstart
//!
//! A four-scheduler faceoff on a 16-node pool, three seeds per cell:
//!
//! ```
//! use gfs_lab::{ClusterShape, Grid, SchedulerSpec, Threads, WorkloadAxis};
//! use gfs_trace::WorkloadConfig;
//! use gfs_types::HOUR;
//!
//! let grid = Grid::new()
//!     .schedulers(SchedulerSpec::baselines())
//!     .shape(ClusterShape::a100(16, 8))
//!     .workload(WorkloadAxis::generated(
//!         "medium-spot",
//!         WorkloadConfig {
//!             hp_tasks: 30,
//!             spot_tasks: 10,
//!             spot_scale: 2.0,
//!             horizon_secs: 6 * HOUR,
//!             ..WorkloadConfig::default()
//!         },
//!     ))
//!     .seeds([1, 2, 3]);
//!
//! let result = grid.run(Threads::Auto);
//! assert_eq!(result.report.cells.len(), 4);
//! let yarn = result.report.cell("YARN-CS", "16n", "medium-spot", "default").unwrap();
//! assert!(yarn.median("hp_completion") > 0.0);
//! println!("{}", result.report.render_table(&["hp_mean_jct_s", "eviction_rate"]));
//! ```
//!
//! Custom schedulers and hand-built traces plug in through
//! [`SchedulerSpec::new`] and [`WorkloadAxis::new`]; the facade's
//! `gfs::scenario` module provides grid-ready constructors for the full
//! GFS framework (which trains a demand estimator per run).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
mod grid;
pub mod pool;
pub mod recovery;
mod report;

pub use agg::{MetricStats, MetricSummary};
#[allow(deprecated)]
pub use grid::FaultAxis;
pub use grid::{
    ClusterShape, DynamicsAxis, Grid, GridResult, MarketAxis, NodeGroup, ParamsAxis, PolicyAxis,
    RunContext, Scenario, SchedulerSpec, UniformTrace, WorkloadAxis,
};
pub use pool::Threads;
pub use recovery::{crash_and_recover, CrashPlan, CrashPoint, RecoveryOutcome};
pub use report::{CellSummary, GridReport};
