//! Across-seed aggregation: reduces the per-run [`RunSummary`]s of one
//! grid cell into robust summary statistics (median / IQR / min / max),
//! the form credible suite-level comparisons report instead of single-seed
//! point estimates.

use gfs_sim::RunSummary;
use serde::{Deserialize, Serialize};

/// Robust summary statistics of one scalar metric across seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricStats {
    /// Median across seeds.
    pub median: f64,
    /// Interquartile range (P75 − P25) across seeds.
    pub iqr: f64,
    /// Minimum across seeds.
    pub min: f64,
    /// Maximum across seeds.
    pub max: f64,
}

impl MetricStats {
    /// Computes the statistics of a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains a NaN.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "a cell has at least one seed");
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("metrics are finite"));
        MetricStats {
            median: midpoint_quantile(&v, 0.5),
            iqr: midpoint_quantile(&v, 0.75) - midpoint_quantile(&v, 0.25),
            min: v[0],
            max: v[v.len() - 1],
        }
    }
}

/// One aggregated metric: name plus its across-seed statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Metric name (one of [`RunSummary::METRICS`]).
    pub metric: String,
    /// Across-seed statistics.
    pub stats: MetricStats,
}

/// Reduces the per-seed summaries of one cell into one row per metric,
/// in [`RunSummary::METRICS`] order.
///
/// Metrics of the drain/scale-out extension (indices from
/// [`RunSummary::DYNAMICS_METRICS_START`]) produce a row only when some
/// run recorded a non-zero value — mirroring their `skip_serializing_if`
/// defaults on the wire, so summaries of static or fault-only grids keep
/// their historical byte encoding.
#[must_use]
pub fn aggregate(runs: &[RunSummary]) -> Vec<MetricSummary> {
    RunSummary::METRICS
        .iter()
        .enumerate()
        .filter_map(|(k, &metric)| {
            let values: Vec<f64> = runs.iter().map(|r| r.values()[k]).collect();
            if k >= RunSummary::DYNAMICS_METRICS_START && values.iter().all(|&v| v == 0.0) {
                return None;
            }
            Some(MetricSummary {
                metric: metric.to_string(),
                stats: MetricStats::of(&values),
            })
        })
        .collect()
}

/// Linear-interpolated (midpoint) quantile of a sorted sample.
fn midpoint_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_sample() {
        let s = MetricStats::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // P25 = 1.75, P75 = 3.25
        assert!((s.iqr - 1.5).abs() < 1e-12, "iqr {}", s.iqr);
    }

    #[test]
    fn single_value_collapses() {
        let s = MetricStats::of(&[7.0]);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.iqr, 0.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn order_invariant() {
        let a = MetricStats::of(&[1.0, 9.0, 5.0]);
        let b = MetricStats::of(&[9.0, 1.0, 5.0]);
        assert_eq!(a, b);
        assert_eq!(a.median, 5.0);
    }

    #[test]
    fn aggregate_covers_every_metric() {
        let run = RunSummary {
            hp_tasks: 10,
            spot_tasks: 5,
            hp_completion: 1.0,
            spot_completion: 0.8,
            hp_mean_jct_s: 100.0,
            hp_p99_jct_s: 200.0,
            hp_mean_jqt_s: 10.0,
            spot_mean_jct_s: 300.0,
            spot_p99_jct_s: 400.0,
            spot_mean_jqt_s: 20.0,
            spot_p99_jqt_s: 50.0,
            eviction_count: 3,
            eviction_rate: 0.1,
            mean_alloc_rate: 0.5,
            makespan_hours: 24.0,
            failed_commits: 0,
            availability: 0.98,
            displacement_count: 2,
            displaced_mean_jct_s: 500.0,
            migration_count: 0,
            node_drains: 0,
            added_gpus: 0.0,
            gpu_hours_bought: 0.0,
            market_spend_usd: 0.0,
            cost_per_completed_usd: 0.0,
            stranded_gpu_hours: 0.0,
        };
        let rows = aggregate(&[run.clone(), run.clone()]);
        // all-zero dynamics-extension metrics stay off the wire
        assert_eq!(rows.len(), RunSummary::DYNAMICS_METRICS_START);
        assert_eq!(rows[0].metric, "hp_completion");
        assert_eq!(rows[0].stats.median, 1.0);
        assert_eq!(rows[0].stats.iqr, 0.0);
        assert!(rows.iter().all(|r| r.metric != "migration_count"));
        // ...and appear as soon as any seed produced one
        let mut dynamic = run;
        dynamic.migration_count = 3;
        dynamic.added_gpus = 16.0;
        let rows = aggregate(&[dynamic.clone(), dynamic.clone()]);
        assert_eq!(rows.len(), RunSummary::DYNAMICS_METRICS_START + 2);
        assert!(rows.iter().any(|r| r.metric == "migration_count"));
        assert!(rows.iter().any(|r| r.metric == "added_gpus"));
        assert!(
            rows.iter().all(|r| r.metric != "node_drains"),
            "still all-zero"
        );
        assert!(
            rows.iter().all(|r| r.metric != "market_spend_usd"),
            "cost metrics of market-free runs stay off the wire too"
        );
        // market-run cost metrics surface through the same gate
        dynamic.gpu_hours_bought = 16.0;
        dynamic.market_spend_usd = 48.0;
        let rows = aggregate(&[dynamic.clone(), dynamic]);
        assert!(rows.iter().any(|r| r.metric == "gpu_hours_bought"));
        assert!(rows.iter().any(|r| r.metric == "market_spend_usd"));
        assert!(
            rows.iter().all(|r| r.metric != "stranded_gpu_hours"),
            "still all-zero"
        );
    }
}
