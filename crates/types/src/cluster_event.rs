//! Cluster-timeline vocabulary: the events that change cluster membership
//! over a run (failures, recoveries, maintenance drains, scale-out) and
//! the composable [`DynamicsPlan`] that schedules them.
//!
//! A production fleet is not static — machines die, come back from repair,
//! get drained for maintenance with advance notice, and whole pools grow
//! when an autoscaler buys capacity. The simulator models all of this as
//! one time-ordered stream of [`ClusterEvent`]s injected alongside the
//! task trace. The types here are pure data: *who emits and who consumes
//! them* is documented on [`gfs_sim::dynamics`] (the engine-side module
//! page of the cluster-timeline event flow).
//!
//! [`DynamicsPlan`] supersedes the fault-only `FaultPlan` of the first
//! dynamics iteration; [`FaultPlan`] survives as a deprecated alias so
//! downstream code keeps compiling. See the *Migration* section below.
//!
//! # Determinism rules
//!
//! A [`DynamicsPlan`] must be a pure function of its inputs so that a
//! dynamic experiment grid stays byte-identical across processes and
//! thread counts:
//!
//! * hand-built plans are ordered data — [`DynamicsPlan::new`] stably
//!   sorts events by time, preserving the caller's relative order within a
//!   timestamp;
//! * independent failures ([`DynamicsPlan::seeded_mtbf`]) derive every
//!   draw from a per-`(seed, node)` SplitMix64 stream, so the schedule for
//!   node `k` does not depend on how many events other nodes produced;
//! * correlated failures ([`DynamicsPlan::correlated`]) derive every draw
//!   from a per-`(seed, domain)` stream — one stream per blast radius, so
//!   every node of a [`FailureDomain`] fails and recovers *together*, and
//!   reordering the nodes inside a domain cannot change the schedule;
//! * drains and autoscale steps ([`DynamicsPlan::rolling_drain`],
//!   [`DynamicsPlan::scale_out`]) are closed-form arithmetic over their
//!   parameters — no randomness at all.
//!
//! No wall-clock, thread id or global RNG state ever feeds a plan.
//!
//! # Migration: `FaultPlan` → `DynamicsPlan`
//!
//! | old | new |
//! |---|---|
//! | `FaultPlan::none()` | [`DynamicsPlan::none`] (unchanged) |
//! | `FaultPlan::new(events)` (silent) | [`DynamicsPlan::new`] (validated, returns `Result`) or [`DynamicsPlan::new_unchecked`] |
//! | `FaultPlan::seeded_mtbf(…)` | [`DynamicsPlan::seeded_mtbf`] (byte-identical schedules) |
//! | — | [`DynamicsPlan::correlated`], [`DynamicsPlan::rolling_drain`], [`DynamicsPlan::scale_out`], [`DynamicsPlan::merge`] |
//!
//! `SimConfig::faults` became `SimConfig::dynamics` on the consuming side.

use serde::{Deserialize, Serialize};

use crate::{Error, GpuModel, NodeId, Result, SimDuration, SimTime};

/// Hardware description of a node minted by a scale-out event: the pool
/// ("group") the new machine joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeTemplate {
    /// GPU model of every card on the new node.
    pub model: GpuModel,
    /// Cards on the new node.
    pub gpus: u32,
}

/// What happens at a [`ClusterEvent`]'s timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterEventKind {
    /// The node fails abruptly: every pod on it is displaced and its
    /// capacity vanishes until a matching `NodeUp`.
    NodeDown,
    /// The node returns to service with all cards idle (or, for a node
    /// still draining, the drain is cancelled and its pods keep running).
    NodeUp,
    /// The node starts a maintenance drain with `notice_secs` of advance
    /// warning: it accepts no new placements, running pods may finish
    /// within the notice window (or migrate), and whatever still runs at
    /// the deadline is forcibly displaced exactly like a `NodeDown`.
    Drain {
        /// Seconds between the drain notice and the forced shutdown.
        notice_secs: SimDuration,
    },
    /// A fresh node joins the cluster (autoscaling / capacity purchase).
    /// The event's `node` field is a placeholder — the cluster mints the
    /// next sequential [`NodeId`] when the event applies.
    AddNode {
        /// Hardware of the new node.
        group: NodeTemplate,
    },
}

/// A scheduled change to cluster membership.
///
/// # Examples
///
/// ```
/// use gfs_types::{ClusterEvent, ClusterEventKind, NodeId, SimTime};
///
/// let ev = ClusterEvent::down(NodeId::new(3), SimTime::from_hours(2));
/// assert_eq!(ev.kind, ClusterEventKind::NodeDown);
/// assert_eq!(ev.up_pair(SimTime::from_hours(3)).kind, ClusterEventKind::NodeUp);
/// let drain = ClusterEvent::drain(NodeId::new(3), SimTime::from_hours(4), 1_800);
/// assert_eq!(drain.kind, ClusterEventKind::Drain { notice_secs: 1_800 });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterEvent {
    /// When the event fires.
    pub at: SimTime,
    /// The affected node ([`ClusterEvent::UNASSIGNED`] for `AddNode`,
    /// whose node id is minted when the event applies).
    pub node: NodeId,
    /// What happens.
    pub kind: ClusterEventKind,
}

impl ClusterEvent {
    /// Placeholder node id carried by events that do not target an
    /// existing node (`AddNode`).
    pub const UNASSIGNED: NodeId = NodeId::new(u32::MAX);

    /// A node-down event.
    #[must_use]
    pub fn down(node: NodeId, at: SimTime) -> Self {
        ClusterEvent {
            at,
            node,
            kind: ClusterEventKind::NodeDown,
        }
    }

    /// A node-up event.
    #[must_use]
    pub fn up(node: NodeId, at: SimTime) -> Self {
        ClusterEvent {
            at,
            node,
            kind: ClusterEventKind::NodeUp,
        }
    }

    /// A maintenance-drain event: `node` stops accepting placements at
    /// `at` and is forced down at `at + notice_secs`.
    #[must_use]
    pub fn drain(node: NodeId, at: SimTime, notice_secs: SimDuration) -> Self {
        ClusterEvent {
            at,
            node,
            kind: ClusterEventKind::Drain { notice_secs },
        }
    }

    /// A scale-out event: one node of `group` joins the cluster at `at`.
    #[must_use]
    pub fn add(at: SimTime, group: NodeTemplate) -> Self {
        ClusterEvent {
            at,
            node: ClusterEvent::UNASSIGNED,
            kind: ClusterEventKind::AddNode { group },
        }
    }

    /// The recovery event matching this failure (or drain), at `at`.
    #[must_use]
    pub fn up_pair(&self, at: SimTime) -> Self {
        ClusterEvent::up(self.node, at)
    }
}

/// A named blast radius for correlated failures: the set of nodes that
/// share a fault domain (a rack's power feed, a pod's network spine) and
/// therefore fail and recover *together*.
///
/// # Examples
///
/// ```
/// use gfs_types::FailureDomain;
///
/// let racks = FailureDomain::racks(10, 4);
/// assert_eq!(racks.len(), 3, "10 nodes in racks of 4 -> 4+4+2");
/// assert_eq!(racks[2].nodes.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureDomain {
    /// The member nodes, in ascending id order for generated domains.
    pub nodes: Vec<NodeId>,
}

impl FailureDomain {
    /// A domain over an explicit node set.
    #[must_use]
    pub fn new(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        FailureDomain {
            nodes: nodes.into_iter().collect(),
        }
    }

    /// Splits `node_count` sequential node ids into racks of `rack_size`
    /// (the last rack takes the remainder). `rack_size == 0` yields no
    /// domains.
    #[must_use]
    pub fn racks(node_count: u32, rack_size: u32) -> Vec<FailureDomain> {
        if rack_size == 0 {
            return Vec::new();
        }
        (0..node_count)
            .step_by(rack_size as usize)
            .map(|first| {
                FailureDomain::new((first..(first + rack_size).min(node_count)).map(NodeId::new))
            })
            .collect()
    }
}

/// A time-ordered schedule of cluster events — the dynamics input of one
/// simulation run: failures, recoveries, maintenance drains and scale-out
/// steps, composable from independent builders via
/// [`DynamicsPlan::merge`].
///
/// The engine applies events in order; events targeting nodes a
/// particular cluster does not have (a `fixed` plan paired with a smaller
/// shape) are engine no-ops, so shared hand-built schedules degrade
/// gracefully instead of corrupting state. *Within* a plan, however,
/// [`DynamicsPlan::new`] rejects per-node orderings that can never be
/// meaningful — an `up` for a node that was never down used to be
/// accepted silently and then dropped at run time.
///
/// # Examples
///
/// ```
/// use gfs_types::{DynamicsPlan, FailureDomain, HOUR};
///
/// // rack-level correlated failures: whole blast radii fail together
/// let racks = FailureDomain::racks(16, 4);
/// let correlated = DynamicsPlan::correlated(&racks, 36.0 * HOUR as f64, HOUR as f64, 3 * 24 * HOUR, 42);
/// let again = DynamicsPlan::correlated(&racks, 36.0 * HOUR as f64, HOUR as f64, 3 * 24 * HOUR, 42);
/// assert_eq!(correlated, again, "seeded schedules are reproducible");
///
/// // an autoscale schedule rides along: disjoint histories compose
/// use gfs_types::{GpuModel, NodeTemplate, SimTime};
/// let growth = DynamicsPlan::scale_out(
///     NodeTemplate { model: GpuModel::A100, gpus: 8 },
///     SimTime::from_hours(6), 12 * HOUR, 4, 2,
/// );
/// let combined = correlated.merge(growth).expect("disjoint histories compose");
/// assert!(combined.events().windows(2).all(|w| w[0].at <= w[1].at));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DynamicsPlan {
    events: Vec<ClusterEvent>,
}

/// Per-node lifecycle state tracked by the plan validator.
#[derive(Clone, Copy, PartialEq)]
enum NodeState {
    Up,
    Draining,
    Down,
}

impl DynamicsPlan {
    /// The empty plan: a static-cluster run (the strict no-op path).
    #[must_use]
    pub fn none() -> Self {
        DynamicsPlan::default()
    }

    /// Builds a validated plan from arbitrary events, stably sorting by
    /// timestamp (events at the same instant keep the caller's order).
    ///
    /// Validation tracks each node's lifecycle through the sorted
    /// sequence (up → draining/down → up …) and rejects transitions that
    /// can never apply: an `up` for a node that was never down or
    /// draining, a second `down` without an intervening `up`, a drain of
    /// a node already down or draining. (`down` *after* `drain` is
    /// allowed — an early forced shutdown inside the notice window.)
    /// `AddNode` events mint fresh ids at run time and are skipped.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] naming the node, timestamp and offending
    /// transition.
    pub fn new(events: Vec<ClusterEvent>) -> Result<Self> {
        let plan = DynamicsPlan::new_unchecked(events);
        plan.validate()?;
        Ok(plan)
    }

    /// Builds a plan without per-node lifecycle validation (still stably
    /// sorted by time). Use for schedules intentionally shared across
    /// cluster shapes of different sizes, where events on absent nodes
    /// are engine no-ops; prefer [`DynamicsPlan::new`] everywhere else.
    #[must_use]
    pub fn new_unchecked(mut events: Vec<ClusterEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        DynamicsPlan { events }
    }

    /// Checks the per-node event ordering of an already-sorted plan (see
    /// [`DynamicsPlan::new`]).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for the first invalid transition.
    pub fn validate(&self) -> Result<()> {
        let mut states: std::collections::BTreeMap<NodeId, NodeState> =
            std::collections::BTreeMap::new();
        for ev in &self.events {
            let state = states.entry(ev.node).or_insert(NodeState::Up);
            let fail = |what: &str| {
                Err(Error::InvalidConfig(format!(
                    "{} at t={}s: {what}",
                    ev.node,
                    ev.at.as_secs()
                )))
            };
            match ev.kind {
                ClusterEventKind::AddNode { .. } => {}
                ClusterEventKind::NodeDown => match *state {
                    NodeState::Down => return fail("NodeDown for a node that is already down"),
                    _ => *state = NodeState::Down,
                },
                ClusterEventKind::NodeUp => match *state {
                    NodeState::Up => {
                        return fail("NodeUp for a node that was never down or draining")
                    }
                    _ => *state = NodeState::Up,
                },
                ClusterEventKind::Drain { .. } => match *state {
                    NodeState::Up => *state = NodeState::Draining,
                    NodeState::Draining => {
                        return fail("Drain for a node that is already draining")
                    }
                    NodeState::Down => return fail("Drain for a node that is down"),
                },
            }
        }
        Ok(())
    }

    /// Merges two plans into one validated timeline: events interleave by
    /// timestamp (stable — `self`'s events precede `other`'s at equal
    /// times).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when the combined per-node histories
    /// conflict (e.g. both plans fail the same node without an
    /// intervening recovery).
    pub fn merge(self, other: DynamicsPlan) -> Result<Self> {
        let mut events = self.events;
        events.extend(other.events);
        DynamicsPlan::new(events)
    }

    /// The events, ascending by time.
    #[must_use]
    pub fn events(&self) -> &[ClusterEvent] {
        &self.events
    }

    /// Whether the plan schedules no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Generates a seeded *independent* failure/repair schedule: every
    /// node alternates up-time drawn from `Exp(1/mtbf_secs)` and
    /// down-time drawn from `Exp(1/mttr_secs)` until `horizon_secs`, the
    /// classic renewal model of machine churn. Each node draws from its
    /// own `(seed, node)` SplitMix64 stream (see the module docs for the
    /// determinism rules), so the schedule is byte-identical to the
    /// `FaultPlan::seeded_mtbf` of earlier releases.
    ///
    /// A non-positive `mtbf_secs` yields the empty plan; a non-positive
    /// `mttr_secs` means nodes never come back within the horizon.
    #[must_use]
    pub fn seeded_mtbf(
        node_count: u32,
        mtbf_secs: f64,
        mttr_secs: f64,
        horizon_secs: SimDuration,
        seed: u64,
    ) -> Self {
        if mtbf_secs <= 0.0 || node_count == 0 || horizon_secs == 0 {
            return DynamicsPlan::none();
        }
        let mut events = Vec::new();
        for node in 0..node_count {
            let mut rng =
                SplitMix64::new(seed ^ (u64::from(node).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let mut t = rng.exp(mtbf_secs);
            while t < horizon_secs as f64 {
                let down_at = t.round() as u64;
                events.push(ClusterEvent::down(
                    NodeId::new(node),
                    SimTime::from_secs(down_at),
                ));
                if mttr_secs <= 0.0 {
                    break; // never repaired within this horizon
                }
                t += rng.exp(mttr_secs).max(1.0);
                if t >= horizon_secs as f64 {
                    break; // still down when the horizon ends
                }
                let up_at = (t.round() as u64).max(down_at + 1);
                events.push(ClusterEvent::up(
                    NodeId::new(node),
                    SimTime::from_secs(up_at),
                ));
                t = up_at as f64 + rng.exp(mtbf_secs);
            }
        }
        DynamicsPlan::new_unchecked(events)
    }

    /// Generates a seeded *correlated* failure schedule over declared
    /// blast radii: each [`FailureDomain`] alternates up-time
    /// `Exp(1/mtbf_secs)` and repair time `Exp(1/mttr_secs)` drawn from
    /// **one** per-`(seed, domain)` SplitMix64 stream, and every node of
    /// the domain fails and recovers at the same instant — a rack losing
    /// its power feed, not sixteen coincidental machine deaths.
    ///
    /// `mtbf_secs` here is the domain's failure rate, not a per-node one.
    #[must_use]
    pub fn correlated(
        domains: &[FailureDomain],
        mtbf_secs: f64,
        mttr_secs: f64,
        horizon_secs: SimDuration,
        seed: u64,
    ) -> Self {
        if mtbf_secs <= 0.0 || domains.is_empty() || horizon_secs == 0 {
            return DynamicsPlan::none();
        }
        let mut events = Vec::new();
        for (k, domain) in domains.iter().enumerate() {
            if domain.nodes.is_empty() {
                continue;
            }
            // a distinct mixing constant keeps domain streams independent
            // of the per-node streams of `seeded_mtbf` under one seed
            let mut rng =
                SplitMix64::new(seed ^ ((k as u64).wrapping_mul(0xA076_1D64_78BD_642F) | 1));
            let mut t = rng.exp(mtbf_secs);
            while t < horizon_secs as f64 {
                let down_at = t.round() as u64;
                for &node in &domain.nodes {
                    events.push(ClusterEvent::down(node, SimTime::from_secs(down_at)));
                }
                if mttr_secs <= 0.0 {
                    break;
                }
                t += rng.exp(mttr_secs).max(1.0);
                if t >= horizon_secs as f64 {
                    break;
                }
                let up_at = (t.round() as u64).max(down_at + 1);
                for &node in &domain.nodes {
                    events.push(ClusterEvent::up(node, SimTime::from_secs(up_at)));
                }
                t = up_at as f64 + rng.exp(mtbf_secs);
            }
        }
        DynamicsPlan::new_unchecked(events)
    }

    /// A rolling maintenance wave: node `k` of `0..node_count` receives a
    /// drain notice at `start + k·stagger_secs`, is forced down
    /// `notice_secs` later, and returns to service after
    /// `maintenance_secs` of work. Closed-form and deterministic — the
    /// kernel-upgrade scenario every fleet runs monthly.
    #[must_use]
    pub fn rolling_drain(
        node_count: u32,
        start: SimTime,
        stagger_secs: SimDuration,
        notice_secs: SimDuration,
        maintenance_secs: SimDuration,
    ) -> Self {
        let mut events = Vec::with_capacity(node_count as usize * 2);
        for k in 0..node_count {
            let node = NodeId::new(k);
            let drain_at = start + u64::from(k) * stagger_secs;
            events.push(ClusterEvent::drain(node, drain_at, notice_secs));
            events.push(ClusterEvent::up(
                node,
                drain_at + notice_secs + maintenance_secs,
            ));
        }
        DynamicsPlan::new_unchecked(events)
    }

    /// A step/periodic autoscale schedule: `nodes_per_step` fresh nodes of
    /// `group` join at `start`, then again every `interval_secs`, for
    /// `steps` steps in total (`steps == 1` is a single scale-out step).
    #[must_use]
    pub fn scale_out(
        group: NodeTemplate,
        start: SimTime,
        interval_secs: SimDuration,
        steps: u32,
        nodes_per_step: u32,
    ) -> Self {
        let mut events = Vec::with_capacity((steps * nodes_per_step) as usize);
        for step in 0..steps {
            let at = start + u64::from(step) * interval_secs;
            for _ in 0..nodes_per_step {
                events.push(ClusterEvent::add(at, group));
            }
        }
        DynamicsPlan::new_unchecked(events)
    }
}

/// Fault-only predecessor of [`DynamicsPlan`], kept so downstream call
/// sites keep compiling. All constructors live on [`DynamicsPlan`]; note
/// that `new` now validates and returns a `Result`.
#[deprecated(
    note = "renamed to DynamicsPlan; the cluster timeline now also carries drains and scale-out"
)]
pub type FaultPlan = DynamicsPlan;

/// SplitMix64: a tiny, well-mixed, dependency-free generator — exactly
/// what a seeded dynamics schedule needs (statistical perfection is not
/// the point; platform-independent reproducibility is).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `(0, 1]` (never 0, so `ln` is always finite).
    fn unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// Exponential draw with the given mean.
    fn exp(&mut self, mean: f64) -> f64 {
        -mean * self.unit().ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HOUR;

    #[test]
    fn empty_plan_is_noop() {
        let p = DynamicsPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn new_sorts_stably_by_time() {
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        let p = DynamicsPlan::new(vec![
            ClusterEvent::down(n1, SimTime::from_secs(50)),
            ClusterEvent::down(n0, SimTime::from_secs(10)),
            ClusterEvent::up(n1, SimTime::from_secs(50)),
        ])
        .expect("valid ordering");
        assert_eq!(p.events()[0].node, n0);
        // stable: the two t=50 events keep their relative order
        assert_eq!(p.events()[1].kind, ClusterEventKind::NodeDown);
        assert_eq!(p.events()[2].kind, ClusterEventKind::NodeUp);
    }

    #[test]
    fn validation_rejects_up_for_never_down_node() {
        let err = DynamicsPlan::new(vec![ClusterEvent::up(
            NodeId::new(3),
            SimTime::from_secs(9),
        )])
        .unwrap_err()
        .to_string();
        assert!(err.contains("node-3"), "{err}");
        assert!(err.contains("t=9s"), "{err}");
        assert!(err.contains("never down"), "{err}");
    }

    #[test]
    fn validation_rejects_double_down_and_drain_conflicts() {
        let n = NodeId::new(0);
        let double_down = DynamicsPlan::new(vec![
            ClusterEvent::down(n, SimTime::from_secs(10)),
            ClusterEvent::down(n, SimTime::from_secs(20)),
        ]);
        assert!(double_down
            .unwrap_err()
            .to_string()
            .contains("already down"));
        let drain_down = DynamicsPlan::new(vec![
            ClusterEvent::down(n, SimTime::from_secs(10)),
            ClusterEvent::drain(n, SimTime::from_secs(20), 60),
        ]);
        assert!(drain_down.unwrap_err().to_string().contains("is down"));
        let double_drain = DynamicsPlan::new(vec![
            ClusterEvent::drain(n, SimTime::from_secs(10), 60),
            ClusterEvent::drain(n, SimTime::from_secs(20), 60),
        ]);
        assert!(double_drain
            .unwrap_err()
            .to_string()
            .contains("already draining"));
    }

    #[test]
    fn validation_accepts_drain_lifecycles() {
        let n = NodeId::new(0);
        // drain → (forced down at deadline is implicit) → up → drain again
        assert!(DynamicsPlan::new(vec![
            ClusterEvent::drain(n, SimTime::from_secs(10), 60),
            ClusterEvent::up(n, SimTime::from_secs(100)),
            ClusterEvent::drain(n, SimTime::from_secs(200), 60),
        ])
        .is_ok());
        // early forced shutdown inside the notice window is allowed
        assert!(DynamicsPlan::new(vec![
            ClusterEvent::drain(n, SimTime::from_secs(10), 600),
            ClusterEvent::down(n, SimTime::from_secs(50)),
            ClusterEvent::up(n, SimTime::from_secs(500)),
        ])
        .is_ok());
    }

    #[test]
    fn unchecked_constructor_tolerates_anything() {
        let n = NodeId::new(0);
        let p = DynamicsPlan::new_unchecked(vec![
            ClusterEvent::up(n, SimTime::from_secs(5)),
            ClusterEvent::up(n, SimTime::from_secs(1)),
        ]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.events()[0].at, SimTime::from_secs(1), "still sorted");
        assert!(p.validate().is_err());
    }

    #[test]
    fn seeded_schedules_are_deterministic_and_ordered() {
        let a = DynamicsPlan::seeded_mtbf(8, 24.0 * HOUR as f64, HOUR as f64, 7 * 24 * HOUR, 7);
        let b = DynamicsPlan::seeded_mtbf(8, 24.0 * HOUR as f64, HOUR as f64, 7 * 24 * HOUR, 7);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "a day-scale MTBF over a week must fault");
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.validate().is_ok(), "renewal schedules alternate per node");
        let c = DynamicsPlan::seeded_mtbf(8, 24.0 * HOUR as f64, HOUR as f64, 7 * 24 * HOUR, 8);
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn downs_and_ups_alternate_per_node() {
        let p =
            DynamicsPlan::seeded_mtbf(4, 12.0 * HOUR as f64, 2.0 * HOUR as f64, 14 * 24 * HOUR, 3);
        for node in 0..4u32 {
            let mut down = false;
            for e in p.events().iter().filter(|e| e.node == NodeId::new(node)) {
                match e.kind {
                    ClusterEventKind::NodeDown => {
                        assert!(!down, "double down on node {node}");
                        down = true;
                    }
                    ClusterEventKind::NodeUp => {
                        assert!(down, "up without down on node {node}");
                        down = false;
                    }
                    other => panic!("unexpected kind {other:?}"),
                }
            }
        }
    }

    #[test]
    fn mtbf_scales_event_count() {
        let rare = DynamicsPlan::seeded_mtbf(32, 1e9, HOUR as f64, 24 * HOUR, 1);
        let churny = DynamicsPlan::seeded_mtbf(32, 6.0 * HOUR as f64, HOUR as f64, 24 * HOUR, 1);
        assert!(rare.len() < churny.len());
    }

    #[test]
    fn degenerate_inputs_yield_empty_plans() {
        assert!(DynamicsPlan::seeded_mtbf(0, 100.0, 10.0, 1_000, 1).is_empty());
        assert!(DynamicsPlan::seeded_mtbf(4, 0.0, 10.0, 1_000, 1).is_empty());
        assert!(DynamicsPlan::seeded_mtbf(4, 100.0, 10.0, 0, 1).is_empty());
        assert!(DynamicsPlan::correlated(&[], 100.0, 10.0, 1_000, 1).is_empty());
        assert!(
            DynamicsPlan::correlated(&FailureDomain::racks(8, 4), 0.0, 10.0, 1_000, 1).is_empty()
        );
        assert!(DynamicsPlan::rolling_drain(0, SimTime::ZERO, 1, 1, 1).is_empty());
        let t = NodeTemplate {
            model: GpuModel::A100,
            gpus: 8,
        };
        assert!(DynamicsPlan::scale_out(t, SimTime::ZERO, HOUR, 0, 4).is_empty());
    }

    #[test]
    fn correlated_failures_share_one_stream_per_domain() {
        let racks = FailureDomain::racks(8, 4);
        let p = DynamicsPlan::correlated(&racks, 12.0 * HOUR as f64, HOUR as f64, 7 * 24 * HOUR, 5);
        assert_eq!(
            p,
            DynamicsPlan::correlated(&racks, 12.0 * HOUR as f64, HOUR as f64, 7 * 24 * HOUR, 5),
            "reproducible"
        );
        assert!(!p.is_empty());
        assert!(p.validate().is_ok());
        // whole-rack semantics: every down timestamp hits all 4 rack
        // members at once
        let mut by_time: std::collections::BTreeMap<SimTime, Vec<NodeId>> =
            std::collections::BTreeMap::new();
        for e in p
            .events()
            .iter()
            .filter(|e| e.kind == ClusterEventKind::NodeDown)
        {
            by_time.entry(e.at).or_default().push(e.node);
        }
        for (at, nodes) in by_time {
            assert_eq!(nodes.len(), 4, "partial blast radius at {at}");
            let rack = nodes[0].raw() / 4;
            assert!(
                nodes.iter().all(|n| n.raw() / 4 == rack),
                "mixed racks at {at}"
            );
        }
    }

    #[test]
    fn rolling_drain_staggers_and_restores() {
        let p = DynamicsPlan::rolling_drain(3, SimTime::from_hours(1), 600, 300, 1_200);
        assert!(p.validate().is_ok());
        assert_eq!(p.len(), 6);
        let drains: Vec<&ClusterEvent> = p
            .events()
            .iter()
            .filter(|e| matches!(e.kind, ClusterEventKind::Drain { .. }))
            .collect();
        assert_eq!(drains.len(), 3);
        assert_eq!(drains[0].at, SimTime::from_hours(1));
        assert_eq!(drains[1].at, SimTime::from_secs(3_600 + 600));
        // recovery = drain + notice + maintenance
        let ups: Vec<&ClusterEvent> = p
            .events()
            .iter()
            .filter(|e| e.kind == ClusterEventKind::NodeUp)
            .collect();
        assert_eq!(ups[0].at, SimTime::from_secs(3_600 + 300 + 1_200));
    }

    #[test]
    fn scale_out_steps_mint_unassigned_events() {
        let t = NodeTemplate {
            model: GpuModel::H800,
            gpus: 8,
        };
        let p = DynamicsPlan::scale_out(t, SimTime::from_hours(2), HOUR, 3, 2);
        assert_eq!(p.len(), 6);
        assert!(p.validate().is_ok());
        assert!(p.events().iter().all(|e| e.node == ClusterEvent::UNASSIGNED
            && e.kind == ClusterEventKind::AddNode { group: t }));
        assert_eq!(p.events()[2].at, SimTime::from_hours(3));
    }

    #[test]
    fn merge_interleaves_and_revalidates() {
        let drains = DynamicsPlan::rolling_drain(2, SimTime::from_hours(10), 600, 300, 600);
        let adds = DynamicsPlan::scale_out(
            NodeTemplate {
                model: GpuModel::A100,
                gpus: 8,
            },
            SimTime::from_hours(1),
            HOUR,
            2,
            1,
        );
        let merged = drains.clone().merge(adds).expect("disjoint histories");
        assert_eq!(merged.len(), 6);
        assert!(merged.events().windows(2).all(|w| w[0].at <= w[1].at));
        // conflicting histories are rejected with a descriptive error:
        // two independent plans both failing node 0 without a recovery
        let a = DynamicsPlan::new(vec![ClusterEvent::down(
            NodeId::new(0),
            SimTime::from_hours(11),
        )])
        .expect("valid alone");
        let b = DynamicsPlan::new(vec![ClusterEvent::down(
            NodeId::new(0),
            SimTime::from_hours(12),
        )])
        .expect("valid alone");
        let conflict = a.merge(b).unwrap_err();
        assert!(conflict.to_string().contains("node-0"));
        assert!(conflict.to_string().contains("already down"));
    }

    #[test]
    fn serde_round_trip() {
        let base = DynamicsPlan::seeded_mtbf(2, HOUR as f64, 600.0, 6 * HOUR, 5);
        let p = base
            .merge(DynamicsPlan::scale_out(
                NodeTemplate {
                    model: GpuModel::A800,
                    gpus: 8,
                },
                SimTime::from_hours(3),
                HOUR,
                1,
                1,
            ))
            .expect("compose");
        let json = serde_json::to_string(&p).unwrap();
        let back: DynamicsPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    #[allow(deprecated)]
    fn fault_plan_alias_still_resolves() {
        let p: FaultPlan = FaultPlan::seeded_mtbf(2, HOUR as f64, 600.0, 6 * HOUR, 5);
        assert!(!p.is_empty());
    }
}
