//! Cluster-dynamics vocabulary: node failure/recovery events and seeded
//! fault schedules.
//!
//! A production fleet is not static — machines die, come back from repair,
//! and get drained for maintenance. The simulator models this churn as a
//! stream of [`ClusterEvent`]s (node-down / node-up) injected alongside the
//! task trace. The types here are pure data: *who emits and who consumes
//! them* is documented on [`gfs_sim::dynamics`] (the engine-side module
//! page of the cluster-dynamics event flow).
//!
//! # Determinism rules
//!
//! A [`FaultPlan`] must be a pure function of its inputs so that a faulted
//! experiment grid stays byte-identical across processes and thread
//! counts:
//!
//! * hand-built plans are ordered data — [`FaultPlan::new`] stably sorts
//!   events by time, preserving the caller's relative order within a
//!   timestamp;
//! * generated plans ([`FaultPlan::seeded_mtbf`]) derive every draw from a
//!   per-`(seed, node)` SplitMix64 stream, so the schedule for node `k`
//!   does not depend on how many events other nodes produced, and the
//!   whole plan is reproducible from `(node_count, mtbf, mttr, horizon,
//!   seed)` alone.
//!
//! No wall-clock, thread id or global RNG state ever feeds a plan.

use serde::{Deserialize, Serialize};

use crate::{NodeId, SimDuration, SimTime};

/// What happens to a node at a [`ClusterEvent`]'s timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterEventKind {
    /// The node fails: every pod on it is displaced and its capacity
    /// vanishes until a matching `NodeUp`.
    NodeDown,
    /// The node returns to service with all cards idle.
    NodeUp,
}

/// A scheduled change to cluster membership.
///
/// # Examples
///
/// ```
/// use gfs_types::{ClusterEvent, ClusterEventKind, NodeId, SimTime};
///
/// let ev = ClusterEvent::down(NodeId::new(3), SimTime::from_hours(2));
/// assert_eq!(ev.kind, ClusterEventKind::NodeDown);
/// assert_eq!(ev.up_pair(SimTime::from_hours(3)).kind, ClusterEventKind::NodeUp);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterEvent {
    /// When the event fires.
    pub at: SimTime,
    /// The affected node.
    pub node: NodeId,
    /// Down or up.
    pub kind: ClusterEventKind,
}

impl ClusterEvent {
    /// A node-down event.
    #[must_use]
    pub fn down(node: NodeId, at: SimTime) -> Self {
        ClusterEvent {
            at,
            node,
            kind: ClusterEventKind::NodeDown,
        }
    }

    /// A node-up event.
    #[must_use]
    pub fn up(node: NodeId, at: SimTime) -> Self {
        ClusterEvent {
            at,
            node,
            kind: ClusterEventKind::NodeUp,
        }
    }

    /// The recovery event matching this failure, at `at`.
    #[must_use]
    pub fn up_pair(&self, at: SimTime) -> Self {
        ClusterEvent::up(self.node, at)
    }
}

/// A time-ordered schedule of cluster events — the fault injection input
/// of one simulation run.
///
/// The engine applies events in order; a `NodeDown` for a node that is
/// already down (or `NodeUp` for one already up) is a no-op, so imperfect
/// hand-built schedules degrade gracefully instead of corrupting state.
///
/// # Examples
///
/// ```
/// use gfs_types::{FaultPlan, HOUR};
///
/// // ~1 failure per node per week, 2 h mean repair, over a 3-day horizon
/// let plan = FaultPlan::seeded_mtbf(16, 7.0 * 24.0 * HOUR as f64, 2.0 * HOUR as f64, 3 * 24 * HOUR, 42);
/// let again = FaultPlan::seeded_mtbf(16, 7.0 * 24.0 * HOUR as f64, 2.0 * HOUR as f64, 3 * 24 * HOUR, 42);
/// assert_eq!(plan, again, "seeded schedules are reproducible");
/// assert!(plan.events().windows(2).all(|w| w[0].at <= w[1].at));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<ClusterEvent>,
}

impl FaultPlan {
    /// The empty plan: a fault-free run (the strict no-op path).
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from arbitrary events, stably sorting by timestamp
    /// (events at the same instant keep the caller's order).
    #[must_use]
    pub fn new(mut events: Vec<ClusterEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// The events, ascending by time.
    #[must_use]
    pub fn events(&self) -> &[ClusterEvent] {
        &self.events
    }

    /// Whether the plan schedules no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Generates a seeded failure/repair schedule: every node alternates
    /// up-time drawn from `Exp(1/mtbf_secs)` and down-time drawn from
    /// `Exp(1/mttr_secs)` until `horizon_secs`, the classic renewal model
    /// of machine churn. Each node draws from its own `(seed, node)`
    /// SplitMix64 stream (see the module docs for the determinism rules).
    ///
    /// A non-positive `mtbf_secs` yields the empty plan; a non-positive
    /// `mttr_secs` means nodes never come back within the horizon.
    #[must_use]
    pub fn seeded_mtbf(
        node_count: u32,
        mtbf_secs: f64,
        mttr_secs: f64,
        horizon_secs: SimDuration,
        seed: u64,
    ) -> Self {
        if mtbf_secs <= 0.0 || node_count == 0 || horizon_secs == 0 {
            return FaultPlan::none();
        }
        let mut events = Vec::new();
        for node in 0..node_count {
            let mut rng = SplitMix64::new(seed ^ (u64::from(node).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let mut t = rng.exp(mtbf_secs);
            while t < horizon_secs as f64 {
                let down_at = t.round() as u64;
                events.push(ClusterEvent::down(NodeId::new(node), SimTime::from_secs(down_at)));
                if mttr_secs <= 0.0 {
                    break; // never repaired within this horizon
                }
                t += rng.exp(mttr_secs).max(1.0);
                if t >= horizon_secs as f64 {
                    break; // still down when the horizon ends
                }
                let up_at = (t.round() as u64).max(down_at + 1);
                events.push(ClusterEvent::up(NodeId::new(node), SimTime::from_secs(up_at)));
                t = up_at as f64 + rng.exp(mtbf_secs);
            }
        }
        FaultPlan::new(events)
    }
}

/// SplitMix64: a tiny, well-mixed, dependency-free generator — exactly
/// what a seeded fault schedule needs (statistical perfection is not the
/// point; platform-independent reproducibility is).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `(0, 1]` (never 0, so `ln` is always finite).
    fn unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// Exponential draw with the given mean.
    fn exp(&mut self, mean: f64) -> f64 {
        -mean * self.unit().ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HOUR;

    #[test]
    fn empty_plan_is_noop() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn new_sorts_stably_by_time() {
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        let p = FaultPlan::new(vec![
            ClusterEvent::down(n1, SimTime::from_secs(50)),
            ClusterEvent::down(n0, SimTime::from_secs(10)),
            ClusterEvent::up(n1, SimTime::from_secs(50)),
        ]);
        assert_eq!(p.events()[0].node, n0);
        // stable: the two t=50 events keep their relative order
        assert_eq!(p.events()[1].kind, ClusterEventKind::NodeDown);
        assert_eq!(p.events()[2].kind, ClusterEventKind::NodeUp);
    }

    #[test]
    fn seeded_schedules_are_deterministic_and_ordered() {
        let a = FaultPlan::seeded_mtbf(8, 24.0 * HOUR as f64, HOUR as f64, 7 * 24 * HOUR, 7);
        let b = FaultPlan::seeded_mtbf(8, 24.0 * HOUR as f64, HOUR as f64, 7 * 24 * HOUR, 7);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "a day-scale MTBF over a week must fault");
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
        let c = FaultPlan::seeded_mtbf(8, 24.0 * HOUR as f64, HOUR as f64, 7 * 24 * HOUR, 8);
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn downs_and_ups_alternate_per_node() {
        let p = FaultPlan::seeded_mtbf(4, 12.0 * HOUR as f64, 2.0 * HOUR as f64, 14 * 24 * HOUR, 3);
        for node in 0..4u32 {
            let mut down = false;
            for e in p.events().iter().filter(|e| e.node == NodeId::new(node)) {
                match e.kind {
                    ClusterEventKind::NodeDown => {
                        assert!(!down, "double down on node {node}");
                        down = true;
                    }
                    ClusterEventKind::NodeUp => {
                        assert!(down, "up without down on node {node}");
                        down = false;
                    }
                }
            }
        }
    }

    #[test]
    fn mtbf_scales_event_count() {
        let rare = FaultPlan::seeded_mtbf(32, 1e9, HOUR as f64, 24 * HOUR, 1);
        let churny = FaultPlan::seeded_mtbf(32, 6.0 * HOUR as f64, HOUR as f64, 24 * HOUR, 1);
        assert!(rare.len() < churny.len());
    }

    #[test]
    fn degenerate_inputs_yield_empty_plans() {
        assert!(FaultPlan::seeded_mtbf(0, 100.0, 10.0, 1_000, 1).is_empty());
        assert!(FaultPlan::seeded_mtbf(4, 0.0, 10.0, 1_000, 1).is_empty());
        assert!(FaultPlan::seeded_mtbf(4, 100.0, 10.0, 0, 1).is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let p = FaultPlan::seeded_mtbf(2, HOUR as f64, 600.0, 6 * HOUR, 5);
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
