//! Simulated time.
//!
//! The simulator uses an integer clock counted in whole seconds since the
//! start of the experiment, which is defined to be **Monday 00:00**. An
//! integer clock keeps the discrete-event simulation deterministic and
//! totally ordered; sub-second precision is never needed because the paper's
//! smallest interval is the 30-second preemption grace period.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// One minute in seconds.
pub const MINUTE: u64 = 60;
/// One hour in seconds.
pub const HOUR: u64 = 3_600;
/// Seconds per day.
pub const SECONDS_PER_DAY: u64 = 24 * HOUR;
/// Seconds per week.
pub const SECONDS_PER_WEEK: u64 = 7 * SECONDS_PER_DAY;

/// A span of simulated time, in seconds.
pub type SimDuration = u64;

/// Day of week of a [`SimTime`]; the simulation epoch is a Monday.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Weekday {
    /// Monday (day 0 of the simulated week).
    Monday,
    /// Tuesday.
    Tuesday,
    /// Wednesday.
    Wednesday,
    /// Thursday.
    Thursday,
    /// Friday.
    Friday,
    /// Saturday.
    Saturday,
    /// Sunday.
    Sunday,
}

impl Weekday {
    /// All weekdays in order starting from Monday.
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// Index of the weekday, Monday = 0 .. Sunday = 6.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Weekday::Monday => 0,
            Weekday::Tuesday => 1,
            Weekday::Wednesday => 2,
            Weekday::Thursday => 3,
            Weekday::Friday => 4,
            Weekday::Saturday => 5,
            Weekday::Sunday => 6,
        }
    }

    /// Whether the day falls on a weekend.
    #[must_use]
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }
}

/// An instant of simulated time, in whole seconds since the epoch
/// (Monday 00:00 of week 0).
///
/// # Examples
///
/// ```
/// use gfs_types::{SimTime, Weekday};
///
/// let t = SimTime::from_hours(26); // Tuesday 02:00
/// assert_eq!(t.hour_of_day(), 2);
/// assert_eq!(t.weekday(), Weekday::Tuesday);
/// assert_eq!(t + 3_600, SimTime::from_hours(27));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch: Monday 00:00 of week 0.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from whole seconds since the epoch.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Creates a time from whole minutes since the epoch.
    #[must_use]
    pub const fn from_minutes(minutes: u64) -> Self {
        SimTime(minutes * MINUTE)
    }

    /// Creates a time from whole hours since the epoch.
    #[must_use]
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * HOUR)
    }

    /// Creates a time from whole days since the epoch.
    #[must_use]
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * SECONDS_PER_DAY)
    }

    /// Seconds since the epoch.
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Whole hours since the epoch (floor).
    #[must_use]
    pub const fn as_hours(self) -> u64 {
        self.0 / HOUR
    }

    /// Fractional hours since the epoch.
    #[must_use]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / HOUR as f64
    }

    /// Hour of day in `0..24`.
    #[must_use]
    pub const fn hour_of_day(self) -> u64 {
        (self.0 % SECONDS_PER_DAY) / HOUR
    }

    /// Hour of week in `0..168`.
    #[must_use]
    pub const fn hour_of_week(self) -> u64 {
        (self.0 % SECONDS_PER_WEEK) / HOUR
    }

    /// Day index since the epoch.
    #[must_use]
    pub const fn day(self) -> u64 {
        self.0 / SECONDS_PER_DAY
    }

    /// Week index since the epoch.
    #[must_use]
    pub const fn week(self) -> u64 {
        self.0 / SECONDS_PER_WEEK
    }

    /// Day of week; the epoch is a Monday.
    #[must_use]
    pub fn weekday(self) -> Weekday {
        Weekday::ALL[((self.0 / SECONDS_PER_DAY) % 7) as usize]
    }

    /// Saturating difference `self - earlier` in seconds.
    #[must_use]
    pub const fn since(self, earlier: SimTime) -> SimDuration {
        self.0.saturating_sub(earlier.0)
    }

    /// Adds a duration, saturating at the numeric limit.
    #[must_use]
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// Difference in seconds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::since`] for a saturating difference.
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.0 - rhs.0
    }
}

impl From<u64> for SimTime {
    fn from(secs: u64) -> Self {
        SimTime(secs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.day();
        let h = self.hour_of_day();
        let m = (self.0 % HOUR) / MINUTE;
        let s = self.0 % MINUTE;
        write!(f, "d{d} {h:02}:{m:02}:{s:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_hours(2).as_secs(), 7_200);
        assert_eq!(SimTime::from_days(1).as_hours(), 24);
        assert_eq!(SimTime::from_minutes(90).as_secs(), 5_400);
    }

    #[test]
    fn hour_of_day_wraps() {
        assert_eq!(SimTime::from_hours(25).hour_of_day(), 1);
        assert_eq!(SimTime::from_hours(48).hour_of_day(), 0);
    }

    #[test]
    fn hour_of_week_wraps() {
        assert_eq!(SimTime::from_hours(167).hour_of_week(), 167);
        assert_eq!(SimTime::from_hours(168).hour_of_week(), 0);
    }

    #[test]
    fn weekday_starts_monday() {
        assert_eq!(SimTime::ZERO.weekday(), Weekday::Monday);
        assert_eq!(SimTime::from_days(5).weekday(), Weekday::Saturday);
        assert_eq!(SimTime::from_days(6).weekday(), Weekday::Sunday);
        assert_eq!(SimTime::from_days(7).weekday(), Weekday::Monday);
    }

    #[test]
    fn weekend_detection() {
        assert!(Weekday::Saturday.is_weekend());
        assert!(Weekday::Sunday.is_weekend());
        assert!(!Weekday::Wednesday.is_weekend());
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(100);
        assert_eq!(t + 20, SimTime::from_secs(120));
        assert_eq!(SimTime::from_secs(120) - t, 20);
        assert_eq!(t.since(SimTime::from_secs(150)), 0, "since saturates");
        let mut u = t;
        u += 50;
        assert_eq!(u.as_secs(), 150);
    }

    #[test]
    fn display_format() {
        let t = SimTime::from_secs(SECONDS_PER_DAY + 2 * HOUR + 3 * MINUTE + 4);
        assert_eq!(t.to_string(), "d1 02:03:04");
    }

    #[test]
    fn week_index() {
        assert_eq!(SimTime::from_days(13).week(), 1);
        assert_eq!(SimTime::from_days(14).week(), 2);
    }

    #[test]
    fn weekday_index_order() {
        for (i, w) in Weekday::ALL.iter().enumerate() {
            assert_eq!(w.index(), i);
        }
    }
}
