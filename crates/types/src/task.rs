//! Task descriptions.
//!
//! Following §3.4.1 of the paper, a task `τᵢ = <wᵢ, gᵢ, ζᵢ, ψᵢ, ιᵢ>` requests
//! `wᵢ` pods of `gᵢ` GPUs each, has a priority class `ζᵢ` (spot or HP), a
//! checkpoint plan `ψᵢ`, and accumulates run logs `ιᵢ` as it is scheduled,
//! preempted and resumed.

use serde::{Deserialize, Serialize};

use crate::{Error, GpuModel, OrgId, Result, SimDuration, SimTime, TaskId};

/// Priority class of a task (`ζᵢ` in the paper).
///
/// HP tasks are never preempted (Eq. 12c/12d); spot tasks may be evicted at
/// any time after a grace period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Low-priority preemptible task running on spot quota.
    Spot,
    /// High-priority task with a strict SLO; never preempted.
    Hp,
}

impl Priority {
    /// Whether this is the high-priority class.
    #[must_use]
    pub fn is_hp(self) -> bool {
        matches!(self, Priority::Hp)
    }

    /// Whether this is the preemptible spot class.
    #[must_use]
    pub fn is_spot(self) -> bool {
        matches!(self, Priority::Spot)
    }
}

/// Per-pod GPU demand (`gᵢ`): either a fraction of one card or a whole
/// number of cards.
///
/// Fractional demands model the GPU-sharing workloads that dominated the
/// 2020 trace (Fig. 2); whole-card demands dominate the 2024 LLM era.
///
/// # Examples
///
/// ```
/// use gfs_types::GpuDemand;
///
/// let d = GpuDemand::fraction(0.25).unwrap();
/// assert!(d.is_fractional());
/// assert_eq!(GpuDemand::whole(8).cards(), 8.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GpuDemand {
    /// A fraction of a single GPU card, strictly inside `(0, 1)`.
    Fraction(f64),
    /// One or more whole GPU cards.
    Whole(u32),
}

impl GpuDemand {
    /// Creates a fractional demand.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTask`] unless `0 < f < 1`.
    pub fn fraction(f: f64) -> Result<Self> {
        if f > 0.0 && f < 1.0 && f.is_finite() {
            Ok(GpuDemand::Fraction(f))
        } else {
            Err(Error::InvalidTask(format!(
                "fractional GPU demand must be in (0, 1), got {f}"
            )))
        }
    }

    /// Creates a whole-card demand of `n ≥ 1` cards.
    #[must_use]
    pub fn whole(n: u32) -> Self {
        GpuDemand::Whole(n.max(1))
    }

    /// Demand expressed in (possibly fractional) cards.
    #[must_use]
    pub fn cards(self) -> f64 {
        match self {
            GpuDemand::Fraction(f) => f,
            GpuDemand::Whole(n) => f64::from(n),
        }
    }

    /// Whole cards requested, or `None` when the demand is fractional.
    #[must_use]
    pub fn whole_cards(self) -> Option<u32> {
        match self {
            GpuDemand::Fraction(_) => None,
            GpuDemand::Whole(n) => Some(n),
        }
    }

    /// Whether the demand is a sub-card fraction.
    #[must_use]
    pub fn is_fractional(self) -> bool {
        matches!(self, GpuDemand::Fraction(_))
    }
}

/// Checkpoint plan `ψᵢ`: the milestones at which task state is durably saved.
///
/// When a spot task is preempted, the work since the most recent checkpoint
/// is lost; Eq. 17 prices this waste during victim selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckpointPlan {
    /// The task never checkpoints: preemption loses all progress.
    None,
    /// The task checkpoints every `interval` seconds of execution.
    Periodic {
        /// Seconds of execution between consecutive checkpoints.
        interval: SimDuration,
    },
}

impl CheckpointPlan {
    /// Progress (seconds of completed work) that survives a preemption after
    /// `executed` seconds of execution in the current run, given `carried`
    /// seconds of work preserved from previous runs.
    #[must_use]
    pub fn preserved_progress(self, carried: SimDuration, executed: SimDuration) -> SimDuration {
        match self {
            CheckpointPlan::None => carried,
            CheckpointPlan::Periodic { interval } => {
                if interval == 0 {
                    return carried + executed;
                }
                let total = carried + executed;
                // checkpoints happen at multiples of `interval` of *total* progress
                let kept = (total / interval) * interval;
                kept.max(carried)
            }
        }
    }

    /// Seconds of work lost if preempted after `executed` seconds in the
    /// current run (with `carried` prior progress): the `t − t_check` term
    /// of Eq. 17.
    #[must_use]
    pub fn wasted_work(self, carried: SimDuration, executed: SimDuration) -> SimDuration {
        carried + executed - self.preserved_progress(carried, executed)
    }
}

/// One run segment of a task (`ιᵢ` entry): a scheduling of the task that
/// ended by completion or preemption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunLog {
    /// When the run started executing.
    pub start: SimTime,
    /// When the run ended (completion or eviction).
    pub end: SimTime,
    /// Whether the run ended in eviction (true) or completion/stop (false).
    pub evicted: bool,
    /// Total work progress (seconds) preserved at the end of the run.
    pub preserved_progress: SimDuration,
}

/// Immutable description of a task, as submitted by a tenant.
///
/// Built via [`TaskSpec::builder`]. See the crate-level example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Unique task identifier.
    pub id: TaskId,
    /// Submitting organization.
    pub org: OrgId,
    /// Priority class `ζᵢ`.
    pub priority: Priority,
    /// Required GPU model.
    pub gpu_model: GpuModel,
    /// Number of pods `wᵢ` (≥ 1). Multi-pod tasks are gang-scheduled.
    pub pods: u32,
    /// GPUs per pod `gᵢ`.
    pub gpus_per_pod: GpuDemand,
    /// Total execution time needed to finish, in seconds of work.
    pub duration_secs: SimDuration,
    /// Submission time.
    pub submit_at: SimTime,
    /// Checkpoint plan `ψᵢ`.
    pub checkpoint: CheckpointPlan,
    /// For spot tasks: the guaranteed duration sold with the instance
    /// (the `H`-hour guarantee of §3.3); `None` for HP tasks.
    pub guarantee_secs: Option<SimDuration>,
}

impl TaskSpec {
    /// Starts building a task with the given id and defaults
    /// (HP, 1 pod × 1 A100, 1 h duration, no checkpoints, submit at 0).
    #[must_use]
    pub fn builder(id: u64) -> TaskSpecBuilder {
        TaskSpecBuilder::new(TaskId::new(id))
    }

    /// Total GPUs requested across all pods, in (possibly fractional) cards.
    #[must_use]
    pub fn total_gpus(&self) -> f64 {
        f64::from(self.pods) * self.gpus_per_pod.cards()
    }

    /// Whether the task requires gang scheduling (all pods placed
    /// atomically). In this model every multi-pod task is a gang.
    #[must_use]
    pub fn is_gang(&self) -> bool {
        self.pods > 1
    }
}

/// Builder for [`TaskSpec`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct TaskSpecBuilder {
    id: TaskId,
    org: OrgId,
    priority: Priority,
    gpu_model: GpuModel,
    pods: u32,
    gpus_per_pod: GpuDemand,
    duration_secs: SimDuration,
    submit_at: SimTime,
    checkpoint: CheckpointPlan,
    guarantee_secs: Option<SimDuration>,
}

impl TaskSpecBuilder {
    /// Creates a builder with defaults.
    #[must_use]
    pub fn new(id: TaskId) -> Self {
        TaskSpecBuilder {
            id,
            org: OrgId::new(0),
            priority: Priority::Hp,
            gpu_model: GpuModel::A100,
            pods: 1,
            gpus_per_pod: GpuDemand::whole(1),
            duration_secs: 3_600,
            submit_at: SimTime::ZERO,
            checkpoint: CheckpointPlan::None,
            guarantee_secs: None,
        }
    }

    /// Sets the submitting organization.
    #[must_use]
    pub fn org(mut self, org: OrgId) -> Self {
        self.org = org;
        self
    }

    /// Sets the priority class.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the required GPU model.
    #[must_use]
    pub fn gpu_model(mut self, model: GpuModel) -> Self {
        self.gpu_model = model;
        self
    }

    /// Sets the number of pods `wᵢ`.
    #[must_use]
    pub fn pods(mut self, pods: u32) -> Self {
        self.pods = pods;
        self
    }

    /// Sets per-pod GPU demand `gᵢ`.
    #[must_use]
    pub fn gpus_per_pod(mut self, demand: GpuDemand) -> Self {
        self.gpus_per_pod = demand;
        self
    }

    /// Sets the total work duration, in seconds.
    #[must_use]
    pub fn duration_secs(mut self, secs: SimDuration) -> Self {
        self.duration_secs = secs;
        self
    }

    /// Sets the submission time.
    #[must_use]
    pub fn submit_at(mut self, t: SimTime) -> Self {
        self.submit_at = t;
        self
    }

    /// Sets the checkpoint plan `ψᵢ`.
    #[must_use]
    pub fn checkpoint(mut self, plan: CheckpointPlan) -> Self {
        self.checkpoint = plan;
        self
    }

    /// Sets the guaranteed duration for a spot task.
    #[must_use]
    pub fn guarantee_secs(mut self, secs: SimDuration) -> Self {
        self.guarantee_secs = Some(secs);
        self
    }

    /// Finishes the build.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTask`] if the task has zero pods, zero
    /// duration, a fractional demand combined with multiple pods, or an HP
    /// task carrying a spot guarantee.
    pub fn build(self) -> Result<TaskSpec> {
        if self.pods == 0 {
            return Err(Error::InvalidTask(
                "task must request at least one pod".into(),
            ));
        }
        if self.duration_secs == 0 {
            return Err(Error::InvalidTask("task duration must be positive".into()));
        }
        if self.pods > 1 && self.gpus_per_pod.is_fractional() {
            return Err(Error::InvalidTask(
                "gang tasks cannot use fractional GPU demands".into(),
            ));
        }
        if self.priority.is_hp() && self.guarantee_secs.is_some() {
            return Err(Error::InvalidTask(
                "HP tasks do not carry spot guarantees".into(),
            ));
        }
        Ok(TaskSpec {
            id: self.id,
            org: self.org,
            priority: self.priority,
            gpu_model: self.gpu_model,
            pods: self.pods,
            gpus_per_pod: self.gpus_per_pod,
            duration_secs: self.duration_secs,
            submit_at: self.submit_at,
            checkpoint: self.checkpoint,
            guarantee_secs: self.guarantee_secs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spot_task() -> TaskSpec {
        TaskSpec::builder(1)
            .priority(Priority::Spot)
            .pods(2)
            .gpus_per_pod(GpuDemand::whole(4))
            .duration_secs(7_200)
            .build()
            .unwrap()
    }

    #[test]
    fn total_gpus_multiplies_pods() {
        assert_eq!(spot_task().total_gpus(), 8.0);
    }

    #[test]
    fn gang_detection() {
        assert!(spot_task().is_gang());
        let single = TaskSpec::builder(2).build().unwrap();
        assert!(!single.is_gang());
    }

    #[test]
    fn fraction_validation() {
        assert!(GpuDemand::fraction(0.5).is_ok());
        assert!(GpuDemand::fraction(0.0).is_err());
        assert!(GpuDemand::fraction(1.0).is_err());
        assert!(GpuDemand::fraction(-0.1).is_err());
        assert!(GpuDemand::fraction(f64::NAN).is_err());
    }

    #[test]
    fn whole_clamps_to_one() {
        assert_eq!(GpuDemand::whole(0).cards(), 1.0);
        assert_eq!(GpuDemand::whole(3).whole_cards(), Some(3));
        assert_eq!(GpuDemand::fraction(0.5).unwrap().whole_cards(), None);
    }

    #[test]
    fn builder_rejects_invalid() {
        assert!(TaskSpec::builder(1).pods(0).build().is_err());
        assert!(TaskSpec::builder(1).duration_secs(0).build().is_err());
        assert!(TaskSpec::builder(1)
            .pods(2)
            .gpus_per_pod(GpuDemand::fraction(0.5).unwrap())
            .build()
            .is_err());
        assert!(TaskSpec::builder(1)
            .priority(Priority::Hp)
            .guarantee_secs(3600)
            .build()
            .is_err());
    }

    #[test]
    fn checkpoint_none_loses_everything_beyond_carried() {
        let plan = CheckpointPlan::None;
        assert_eq!(plan.preserved_progress(100, 500), 100);
        assert_eq!(plan.wasted_work(100, 500), 500);
    }

    #[test]
    fn checkpoint_periodic_keeps_multiples() {
        let plan = CheckpointPlan::Periodic { interval: 600 };
        // carried 0, executed 1500 -> preserved 1200, wasted 300
        assert_eq!(plan.preserved_progress(0, 1_500), 1_200);
        assert_eq!(plan.wasted_work(0, 1_500), 300);
        // carried 600, executed 100 -> total 700 -> preserved 600
        assert_eq!(plan.preserved_progress(600, 100), 600);
        assert_eq!(plan.wasted_work(600, 100), 100);
    }

    #[test]
    fn checkpoint_zero_interval_preserves_all() {
        let plan = CheckpointPlan::Periodic { interval: 0 };
        assert_eq!(plan.preserved_progress(10, 20), 30);
        assert_eq!(plan.wasted_work(10, 20), 0);
    }

    #[test]
    fn preserved_never_below_carried() {
        let plan = CheckpointPlan::Periodic { interval: 1_000 };
        // carried 999 (not at a checkpoint boundary — e.g. carried from a
        // clean stop), executed 0 -> preserved must stay 999
        assert_eq!(plan.preserved_progress(999, 0), 999);
    }

    #[test]
    fn priority_predicates() {
        assert!(Priority::Hp.is_hp());
        assert!(!Priority::Hp.is_spot());
        assert!(Priority::Spot.is_spot());
    }

    #[test]
    fn serde_round_trip() {
        let t = spot_task();
        let json = serde_json::to_string(&t).unwrap();
        let back: TaskSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
