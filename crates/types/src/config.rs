//! Framework configuration (Table 4 of the paper).

use serde::{Deserialize, Serialize};

use crate::{Error, Result, SimDuration, HOUR};

/// How the SQA safety coefficient `η` evolves (Eq. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EtaUpdateRule {
    /// Paper's adaptive feedback rule (Eq. 11).
    Adaptive,
    /// Ablation `GFS-d`: `η` frozen at its initial value.
    Frozen,
}

/// All tunable parameters of GFS, with the defaults of Table 4.
///
/// # Examples
///
/// ```
/// use gfs_types::GfsParams;
///
/// let params = GfsParams::default();
/// assert_eq!(params.guarantee_hours, 1);
/// let tuned = GfsParams::builder().guarantee_hours(4).build().unwrap();
/// assert_eq!(tuned.guarantee_hours, 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GfsParams {
    /// Weight `α` balancing eviction count vs cluster usage in the MILP
    /// objective (Eq. 12).
    pub alpha: f64,
    /// Weight `β` balancing eviction-rate impact vs usage impact in the node
    /// preemption cost (Eq. 19).
    pub beta: f64,
    /// Target guarantee rate `p` for the demand quantile (Eq. 9); `0.9`
    /// means the forecast upper bound is the 90th percentile.
    pub guarantee_rate: f64,
    /// Maximum acceptable spot queuing time `θ` in seconds (Eq. 11).
    pub max_jqt_threshold_secs: SimDuration,
    /// Weight `γ` between short- and long-window eviction counts (Eq. 15).
    pub gamma: f64,
    /// Penalty intensity `m` in the eviction-awareness score (Eq. 16).
    pub penalty_m: f64,
    /// Guarantee horizon `H` in hours (Eq. 9/10); the spot quota protects
    /// spot tasks for this long.
    pub guarantee_hours: u32,
    /// Interval between SQA quota recomputations, in seconds.
    pub quota_update_interval_secs: SimDuration,
    /// Grace period granted to a spot task between preemption notice and
    /// kill, in seconds (§1: "e.g., 30 seconds").
    pub grace_period_secs: SimDuration,
    /// Short eviction-history window for Eq. 15 (default 1 h).
    pub eviction_window_short_secs: SimDuration,
    /// Long eviction-history window for Eq. 15 (default 24 h).
    pub eviction_window_long_secs: SimDuration,
    /// Initial value of the SQA safety coefficient `η` (Eq. 10).
    pub eta_initial: f64,
    /// How `η` is updated.
    pub eta_rule: EtaUpdateRule,
    /// Clamp range for `η` to keep the feedback loop stable.
    pub eta_bounds: (f64, f64),
}

impl Default for GfsParams {
    fn default() -> Self {
        GfsParams {
            alpha: 0.5,
            beta: 0.5,
            guarantee_rate: 0.9,
            max_jqt_threshold_secs: HOUR,
            gamma: 0.8,
            penalty_m: 3.0,
            guarantee_hours: 1,
            quota_update_interval_secs: 300,
            grace_period_secs: 30,
            eviction_window_short_secs: HOUR,
            eviction_window_long_secs: 24 * HOUR,
            eta_initial: 1.0,
            eta_rule: EtaUpdateRule::Adaptive,
            eta_bounds: (0.1, 4.0),
        }
    }
}

impl GfsParams {
    /// Starts a builder initialised with the Table 4 defaults.
    #[must_use]
    pub fn builder() -> GfsParamsBuilder {
        GfsParamsBuilder {
            params: GfsParams::default(),
        }
    }

    /// The guarantee horizon `H` in seconds.
    #[must_use]
    pub fn guarantee_secs(&self) -> SimDuration {
        u64::from(self.guarantee_hours) * HOUR
    }

    /// Validates every field range.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] describing the first violated bound.
    pub fn validate(&self) -> Result<()> {
        fn unit(name: &str, v: f64) -> Result<()> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(Error::InvalidConfig(format!(
                    "{name} must lie in [0, 1], got {v}"
                )))
            }
        }
        unit("alpha", self.alpha)?;
        unit("gamma", self.gamma)?;
        if !(self.guarantee_rate > 0.0 && self.guarantee_rate < 1.0) {
            return Err(Error::InvalidConfig(format!(
                "guarantee_rate must lie in (0, 1), got {}",
                self.guarantee_rate
            )));
        }
        if self.beta < 0.0 {
            return Err(Error::InvalidConfig("beta must be non-negative".into()));
        }
        if self.penalty_m < 0.0 {
            return Err(Error::InvalidConfig(
                "penalty_m must be non-negative".into(),
            ));
        }
        if self.guarantee_hours == 0 {
            return Err(Error::InvalidConfig(
                "guarantee_hours must be positive".into(),
            ));
        }
        if self.quota_update_interval_secs == 0 {
            return Err(Error::InvalidConfig(
                "quota_update_interval_secs must be positive".into(),
            ));
        }
        if self.eta_initial <= 0.0 {
            return Err(Error::InvalidConfig("eta_initial must be positive".into()));
        }
        let (lo, hi) = self.eta_bounds;
        if !(lo > 0.0 && hi >= lo) {
            return Err(Error::InvalidConfig(format!(
                "eta_bounds must satisfy 0 < lo <= hi, got ({lo}, {hi})"
            )));
        }
        if self.eviction_window_short_secs > self.eviction_window_long_secs {
            return Err(Error::InvalidConfig(
                "short eviction window must not exceed the long window".into(),
            ));
        }
        Ok(())
    }
}

/// Builder for [`GfsParams`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct GfsParamsBuilder {
    params: GfsParams,
}

impl GfsParamsBuilder {
    /// Sets `α` (Eq. 12).
    #[must_use]
    pub fn alpha(mut self, v: f64) -> Self {
        self.params.alpha = v;
        self
    }

    /// Sets `β` (Eq. 19).
    #[must_use]
    pub fn beta(mut self, v: f64) -> Self {
        self.params.beta = v;
        self
    }

    /// Sets the target guarantee rate `p` (Eq. 9).
    #[must_use]
    pub fn guarantee_rate(mut self, v: f64) -> Self {
        self.params.guarantee_rate = v;
        self
    }

    /// Sets the JQT threshold `θ` in seconds (Eq. 11).
    #[must_use]
    pub fn max_jqt_threshold_secs(mut self, v: SimDuration) -> Self {
        self.params.max_jqt_threshold_secs = v;
        self
    }

    /// Sets `γ` (Eq. 15).
    #[must_use]
    pub fn gamma(mut self, v: f64) -> Self {
        self.params.gamma = v;
        self
    }

    /// Sets the penalty intensity `m` (Eq. 16).
    #[must_use]
    pub fn penalty_m(mut self, v: f64) -> Self {
        self.params.penalty_m = v;
        self
    }

    /// Sets the guarantee horizon `H` in hours (Eq. 9/10).
    #[must_use]
    pub fn guarantee_hours(mut self, v: u32) -> Self {
        self.params.guarantee_hours = v;
        self
    }

    /// Sets the quota update interval in seconds.
    #[must_use]
    pub fn quota_update_interval_secs(mut self, v: SimDuration) -> Self {
        self.params.quota_update_interval_secs = v;
        self
    }

    /// Sets the preemption grace period in seconds.
    #[must_use]
    pub fn grace_period_secs(mut self, v: SimDuration) -> Self {
        self.params.grace_period_secs = v;
        self
    }

    /// Sets the initial `η` value.
    #[must_use]
    pub fn eta_initial(mut self, v: f64) -> Self {
        self.params.eta_initial = v;
        self
    }

    /// Sets the `η` update rule.
    #[must_use]
    pub fn eta_rule(mut self, rule: EtaUpdateRule) -> Self {
        self.params.eta_rule = rule;
        self
    }

    /// Sets the clamp bounds for `η`.
    #[must_use]
    pub fn eta_bounds(mut self, lo: f64, hi: f64) -> Self {
        self.params.eta_bounds = (lo, hi);
        self
    }

    /// Finishes the build, validating all parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when any field violates its range;
    /// see [`GfsParams::validate`].
    pub fn build(self) -> Result<GfsParams> {
        self.params.validate()?;
        Ok(self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_4() {
        let p = GfsParams::default();
        assert_eq!(p.alpha, 0.5);
        assert_eq!(p.beta, 0.5);
        assert_eq!(p.guarantee_rate, 0.9);
        assert_eq!(p.max_jqt_threshold_secs, 3_600);
        assert_eq!(p.gamma, 0.8);
        assert_eq!(p.penalty_m, 3.0);
        assert_eq!(p.guarantee_hours, 1);
        assert_eq!(p.quota_update_interval_secs, 300);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn guarantee_secs_converts_hours() {
        let p = GfsParams::builder().guarantee_hours(4).build().unwrap();
        assert_eq!(p.guarantee_secs(), 4 * 3_600);
    }

    #[test]
    fn builder_rejects_bad_rate() {
        assert!(GfsParams::builder().guarantee_rate(0.0).build().is_err());
        assert!(GfsParams::builder().guarantee_rate(1.0).build().is_err());
        assert!(GfsParams::builder().guarantee_rate(1.5).build().is_err());
    }

    #[test]
    fn builder_rejects_bad_eta() {
        assert!(GfsParams::builder().eta_initial(0.0).build().is_err());
        assert!(GfsParams::builder().eta_bounds(0.0, 1.0).build().is_err());
        assert!(GfsParams::builder().eta_bounds(2.0, 1.0).build().is_err());
    }

    #[test]
    fn builder_rejects_zero_h() {
        assert!(GfsParams::builder().guarantee_hours(0).build().is_err());
    }

    #[test]
    fn builder_rejects_bad_alpha_gamma() {
        assert!(GfsParams::builder().alpha(-0.1).build().is_err());
        assert!(GfsParams::builder().gamma(1.1).build().is_err());
    }

    #[test]
    fn frozen_rule_serializes() {
        let p = GfsParams::builder()
            .eta_rule(EtaUpdateRule::Frozen)
            .build()
            .unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: GfsParams = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
