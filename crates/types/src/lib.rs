//! Core domain types shared by every crate in the GFS workspace.
//!
//! This crate defines the vocabulary of the system reproduced from the
//! ASPLOS '26 paper *"GFS: A Preemption-aware Scheduling Framework for GPU
//! Clusters with Predictive Spot Instance Management"*:
//!
//! * strongly-typed identifiers ([`TaskId`], [`NodeId`], [`OrgId`]),
//! * the simulated clock ([`SimTime`], [`SimDuration`]),
//! * GPU hardware descriptions ([`GpuModel`]),
//! * task descriptions ([`TaskSpec`], [`Priority`], [`GpuDemand`]),
//! * the cluster timeline ([`ClusterEvent`], [`DynamicsPlan`]: seeded
//!   failures, correlated [`FailureDomain`] outages, maintenance drains
//!   and scale-out schedules),
//! * the framework configuration ([`GfsParams`], Table 4 of the paper),
//! * and the shared error type ([`Error`]).
//!
//! # Examples
//!
//! ```
//! use gfs_types::{GpuDemand, GpuModel, Priority, SimTime, TaskSpec};
//!
//! let task = TaskSpec::builder(1)
//!     .priority(Priority::Spot)
//!     .pods(2)
//!     .gpus_per_pod(GpuDemand::whole(8))
//!     .gpu_model(GpuModel::A100)
//!     .duration_secs(3_600)
//!     .submit_at(SimTime::from_hours(1))
//!     .build()
//!     .expect("valid task");
//! assert_eq!(task.total_gpus(), 16.0);
//! assert!(task.is_gang());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster_event;
mod config;
mod error;
mod gpu;
mod id;
mod task;
mod time;

#[allow(deprecated)]
pub use cluster_event::FaultPlan;
pub use cluster_event::{
    ClusterEvent, ClusterEventKind, DynamicsPlan, FailureDomain, NodeTemplate,
};
pub use config::{EtaUpdateRule, GfsParams, GfsParamsBuilder};
pub use error::{Error, Result};
pub use gpu::{GpuModel, GPUS_PER_NODE};
pub use id::{NodeId, OrgId, TaskId};
pub use task::{CheckpointPlan, GpuDemand, Priority, RunLog, TaskSpec, TaskSpecBuilder};
pub use time::{SimDuration, SimTime, Weekday, HOUR, MINUTE, SECONDS_PER_DAY, SECONDS_PER_WEEK};
