//! GPU hardware description.
//!
//! The production cluster in the paper (Table 1) mixes four GPU models, all
//! hosted on 8-GPU nodes. Per-model hourly prices are only used to convert
//! allocation-rate improvements into the dollar figure of Fig. 9 / §4.3; the
//! values follow public cloud GPU pricing ratios.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of GPUs per node for every model in the studied cluster (Table 1).
pub const GPUS_PER_NODE: u32 = 8;

/// GPU hardware model.
///
/// # Examples
///
/// ```
/// use gfs_types::GpuModel;
///
/// assert!(GpuModel::H800.hourly_price_usd() > GpuModel::A10.hourly_price_usd());
/// assert_eq!(GpuModel::A100.to_string(), "A100");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum GpuModel {
    /// NVIDIA A10 — inference-class GPU; the cluster's most numerous model.
    A10,
    /// NVIDIA A100 — training-class GPU used for the simulation experiments.
    A100,
    /// NVIDIA A800 — the export-variant of the A100.
    A800,
    /// NVIDIA H800 — the export-variant of the H100.
    H800,
}

impl GpuModel {
    /// All models in the production cluster of Table 1.
    pub const ALL: [GpuModel; 4] = [
        GpuModel::A10,
        GpuModel::A100,
        GpuModel::A800,
        GpuModel::H800,
    ];

    /// Approximate on-demand price, USD per GPU-hour. Used only for the
    /// monthly-benefit estimate of §4.3.
    #[must_use]
    pub fn hourly_price_usd(self) -> f64 {
        match self {
            GpuModel::A10 => 0.9,
            GpuModel::A100 => 3.0,
            GpuModel::A800 => 2.7,
            GpuModel::H800 => 4.2,
        }
    }

    /// Relative compute capability used by the workload generator to scale
    /// task durations across heterogeneous pools (A100 ≡ 1.0).
    #[must_use]
    pub fn relative_flops(self) -> f64 {
        match self {
            GpuModel::A10 => 0.4,
            GpuModel::A100 => 1.0,
            GpuModel::A800 => 0.95,
            GpuModel::H800 => 2.2,
        }
    }

    /// Node count of this model in the production cluster of Table 1
    /// (lower bounds reported by the paper).
    #[must_use]
    pub fn production_node_count(self) -> u32 {
        match self {
            GpuModel::A10 => 2_000,
            GpuModel::A100 => 400,
            GpuModel::A800 => 50,
            GpuModel::H800 => 200,
        }
    }

    /// GPUs per node of this model in the production cluster (Table 1).
    ///
    /// A10 hosts one card per node; the training-class models host eight.
    #[must_use]
    pub fn production_gpus_per_node(self) -> u32 {
        match self {
            GpuModel::A10 => 1,
            _ => GPUS_PER_NODE,
        }
    }

    /// Pre-GFS allocation rate of this model's pool (Table 1), as a fraction.
    #[must_use]
    pub fn production_allocation_rate(self) -> f64 {
        match self {
            GpuModel::A10 => 0.8459,
            GpuModel::A100 => 0.7434,
            GpuModel::A800 => 0.6296,
            GpuModel::H800 => 0.6811,
        }
    }
}

impl fmt::Display for GpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GpuModel::A10 => "A10",
            GpuModel::A100 => "A100",
            GpuModel::A800 => "A800",
            GpuModel::H800 => "H800",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prices_are_positive_and_ordered_reasonably() {
        for m in GpuModel::ALL {
            assert!(m.hourly_price_usd() > 0.0);
            assert!(m.relative_flops() > 0.0);
        }
        assert!(GpuModel::H800.relative_flops() > GpuModel::A100.relative_flops());
        assert!(GpuModel::A10.relative_flops() < GpuModel::A100.relative_flops());
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = GpuModel::ALL.iter().map(ToString::to_string).collect();
        assert_eq!(names, ["A10", "A100", "A800", "H800"]);
    }

    #[test]
    fn table1_allocation_rates() {
        assert!((GpuModel::A100.production_allocation_rate() - 0.7434).abs() < 1e-9);
        // high-end pools are all under 80% before GFS (Observation 2)
        for m in [GpuModel::A100, GpuModel::A800, GpuModel::H800] {
            assert!(m.production_allocation_rate() < 0.80);
        }
    }

    #[test]
    fn a10_is_single_card_node() {
        assert_eq!(GpuModel::A10.production_gpus_per_node(), 1);
        assert_eq!(GpuModel::A100.production_gpus_per_node(), 8);
    }

    #[test]
    fn serde_round_trip() {
        let json = serde_json::to_string(&GpuModel::A800).unwrap();
        let back: GpuModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, GpuModel::A800);
    }
}
