//! Shared error type (C-GOOD-ERR).

use std::fmt;

/// Convenience alias for results carrying the workspace [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the GFS crates.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A task description violated an invariant.
    InvalidTask(String),
    /// A configuration value was out of range.
    InvalidConfig(String),
    /// A scheduling operation referenced an unknown entity.
    NotFound(String),
    /// A cluster-state operation would violate a capacity invariant.
    Capacity(String),
    /// A forecasting model received inconsistent dimensions.
    Shape(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidTask(msg) => write!(f, "invalid task: {msg}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::NotFound(msg) => write!(f, "not found: {msg}"),
            Error::Capacity(msg) => write!(f, "capacity violation: {msg}"),
            Error::Shape(msg) => write!(f, "shape mismatch: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = Error::InvalidTask("zero pods".into());
        assert_eq!(e.to_string(), "invalid task: zero pods");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(Error::Capacity("over".into()));
        assert!(e.to_string().contains("capacity"));
    }
}
