//! Strongly-typed identifiers.
//!
//! Newtypes prevent accidental cross-use of a task index where a node index
//! was expected (C-NEWTYPE). All identifiers are cheap `Copy` integers with
//! `Display` implementations used throughout logs and reports.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name($inner);

        impl $name {
            /// Creates an identifier from its raw integer value.
            #[must_use]
            pub const fn new(raw: $inner) -> Self {
                Self(raw)
            }

            /// Returns the raw integer value.
            #[must_use]
            pub const fn raw(self) -> $inner {
                self.0
            }

            /// Returns the raw value as a `usize`, convenient for indexing.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for $inner {
            fn from(id: $name) -> Self {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a task (a gang of one or more pods).
    ///
    /// # Examples
    ///
    /// ```
    /// use gfs_types::TaskId;
    /// let id = TaskId::new(42);
    /// assert_eq!(id.to_string(), "task-42");
    /// ```
    TaskId,
    u64,
    "task-"
);

id_type!(
    /// Identifier of a physical node (one machine holding several GPUs).
    ///
    /// # Examples
    ///
    /// ```
    /// use gfs_types::NodeId;
    /// assert_eq!(NodeId::new(3).to_string(), "node-3");
    /// ```
    NodeId,
    u32,
    "node-"
);

id_type!(
    /// Identifier of a tenant organization submitting tasks.
    ///
    /// # Examples
    ///
    /// ```
    /// use gfs_types::OrgId;
    /// assert_eq!(OrgId::new(0).index(), 0);
    /// ```
    OrgId,
    u16,
    "org-"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_round_trip() {
        assert_eq!(TaskId::new(7).raw(), 7);
        assert_eq!(NodeId::new(9).raw(), 9);
        assert_eq!(OrgId::new(3).raw(), 3);
    }

    #[test]
    fn display_prefixes() {
        assert_eq!(TaskId::new(1).to_string(), "task-1");
        assert_eq!(NodeId::new(2).to_string(), "node-2");
        assert_eq!(OrgId::new(3).to_string(), "org-3");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(TaskId::new(1) < TaskId::new(2));
        assert!(NodeId::new(10) > NodeId::new(9));
    }

    #[test]
    fn from_conversions() {
        let id: TaskId = 5u64.into();
        let raw: u64 = id.into();
        assert_eq!(raw, 5);
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&TaskId::new(11)).unwrap();
        assert_eq!(json, "11");
        let back: TaskId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, TaskId::new(11));
    }

    #[test]
    fn index_matches_raw() {
        assert_eq!(NodeId::new(123).index(), 123usize);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(TaskId::default(), TaskId::new(0));
    }
}
