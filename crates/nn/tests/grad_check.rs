//! Gradient checks: tape backward vs seeded central differences.
//!
//! Every fused op the trainers rely on — `affine`/`affine2`, `blend`,
//! the Gaussian NLL pair, `embedding`, `softmax_rows`/`scale_rows`/
//! `slice_cols`/`concat_cols`, and the whole-sequence `gru_scan` — is
//! checked against `(L(θ+ε) − L(θ−ε)) / 2ε` element by element. A second
//! suite pins the fused GRU scan to the unfused `step_bound` chain
//! *exactly* (values and weight gradients bit-for-bit), which is the
//! contract that let the trainers switch to [`GruCell::scan`] without
//! disturbing the golden loss trajectories.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use gfs_nn::{Graph, GruCell, Param, Tensor, Var};

/// Seeded uniform tensor in `(lo, hi)`.
fn rand_tensor(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut ChaCha8Rng) -> Tensor {
    let mut t = Tensor::zeros(rows, cols);
    for v in t.as_mut_slice() {
        *v = rng.gen_range(lo..hi);
    }
    t
}

/// Scalar loss of one forward build.
fn eval<F: Fn(&mut Graph) -> Var>(build: &F) -> f64 {
    let mut g = Graph::new();
    let out = build(&mut g);
    let v = g.value(out).item();
    g.finish();
    v
}

/// Checks every element of every param's tape gradient against a central
/// difference of the scalar loss `build` produces.
fn grad_check<F: Fn(&mut Graph) -> Var>(name: &str, params: &[Param], build: F, tol: f64) {
    for p in params {
        p.zero_grad();
    }
    let mut g = Graph::new();
    let out = build(&mut g);
    assert_eq!(g.value(out).shape(), (1, 1), "{name}: loss must be scalar");
    g.backward(out);

    let eps = 1e-5;
    for (pi, p) in params.iter().enumerate() {
        let analytic = p.grad();
        let base = p.value();
        for i in 0..base.len() {
            let mut bumped = base.clone();
            bumped.as_mut_slice()[i] += eps;
            p.set_value(bumped);
            let up = eval(&build);
            let mut bumped = base.clone();
            bumped.as_mut_slice()[i] -= eps;
            p.set_value(bumped);
            let down = eval(&build);
            p.set_value(base.clone());
            let numeric = (up - down) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            let scale = a.abs().max(numeric.abs()).max(1.0);
            assert!(
                (a - numeric).abs() / scale < tol,
                "{name}: param {pi} element {i}: tape {a:.9} vs central-difference {numeric:.9}"
            );
        }
    }
}

#[test]
fn affine_tanh_chain() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let w = Param::new(rand_tensor(4, 3, -0.8, 0.8, &mut rng));
    let b = Param::new(rand_tensor(1, 3, -0.5, 0.5, &mut rng));
    let x = rand_tensor(5, 4, -1.0, 1.0, &mut rng);
    grad_check(
        "affine+tanh",
        &[w.clone(), b.clone()],
        move |g| {
            let xv = g.constant(x.clone());
            let wv = g.param(&w);
            let bv = g.param(&b);
            let a = g.affine(xv, wv, bv);
            let t = g.tanh(a);
            g.mean_all(t)
        },
        1e-6,
    );
}

#[test]
fn elementwise_kitchen_sink() {
    // exp/ln/div/mul/sub/relu/softplus/sigmoid/scale/add_const/neg in one
    // chain, arranged to stay differentiable (relu inputs shifted off 0)
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let p = Param::new(rand_tensor(3, 4, 0.2, 0.9, &mut rng));
    let q = Param::new(rand_tensor(3, 4, 0.3, 1.1, &mut rng));
    grad_check(
        "elementwise",
        &[p.clone(), q.clone()],
        move |g| {
            let pv = g.param(&p);
            let qv = g.param(&q);
            let e = g.exp(pv);
            let l = g.ln(qv);
            let d = g.div(e, qv);
            let m = g.mul(d, l);
            let s = g.sub(m, pv);
            let sh = g.add_const(s, 2.0); // keep relu away from the kink
            let r = g.relu(sh);
            let sp = g.softplus(r);
            let sg = g.sigmoid(sp);
            let sc = g.scale(sg, 1.7);
            let n = g.neg(sc);
            let a = g.add(n, qv);
            g.mean_all(a)
        },
        1e-5,
    );
}

#[test]
fn matmul_transpose_add_row_sum() {
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let a = Param::new(rand_tensor(3, 4, -1.0, 1.0, &mut rng));
    let b = Param::new(rand_tensor(3, 5, -1.0, 1.0, &mut rng));
    let row = Param::new(rand_tensor(1, 5, -0.4, 0.4, &mut rng));
    grad_check(
        "matmul+transpose+add_row",
        &[a.clone(), b.clone(), row.clone()],
        move |g| {
            let av = g.param(&a);
            let bv = g.param(&b);
            let rv = g.param(&row);
            let at = g.transpose(av); // 4×3
            let mm = g.matmul(at, bv); // 4×5
            let ar = g.add_row(mm, rv);
            g.sum_all(ar)
        },
        1e-6,
    );
}

#[test]
fn affine2_and_blend_gru_pieces() {
    let mut rng = ChaCha8Rng::seed_from_u64(14);
    let w = Param::new(rand_tensor(3, 4, -0.7, 0.7, &mut rng));
    let u = Param::new(rand_tensor(4, 4, -0.7, 0.7, &mut rng));
    let b = Param::new(rand_tensor(1, 4, -0.3, 0.3, &mut rng));
    let hp = Param::new(rand_tensor(2, 4, -0.9, 0.9, &mut rng));
    let cand = Param::new(rand_tensor(2, 4, -0.9, 0.9, &mut rng));
    let x = rand_tensor(2, 3, -1.0, 1.0, &mut rng);
    grad_check(
        "affine2+sigmoid+blend",
        &[w.clone(), u.clone(), b.clone(), hp.clone(), cand.clone()],
        move |g| {
            let xv = g.constant(x.clone());
            let wv = g.param(&w);
            let uv = g.param(&u);
            let bv = g.param(&b);
            let hv = g.param(&hp);
            let cv = g.param(&cand);
            let pre = g.affine2(xv, wv, hv, uv, bv);
            let gate = g.sigmoid(pre);
            let out = g.blend(gate, hv, cv);
            g.mean_all(out)
        },
        1e-6,
    );
}

#[test]
fn gaussian_nll_heads() {
    let mut rng = ChaCha8Rng::seed_from_u64(15);
    let mu = Param::new(rand_tensor(3, 4, -0.5, 0.5, &mut rng));
    let pre = Param::new(rand_tensor(3, 4, -1.0, 1.0, &mut rng));
    let target = rand_tensor(3, 4, -0.8, 0.8, &mut rng);
    // fused softplus head
    {
        let mu = mu.clone();
        let pre = pre.clone();
        let target = target.clone();
        grad_check(
            "gaussian_nll_softplus",
            &[mu.clone(), pre.clone()],
            move |g| {
                let mv = g.param(&mu);
                let pv = g.param(&pre);
                let tv = g.constant(target.clone());
                g.gaussian_nll_softplus(mv, pv, tv, 1e-3)
            },
            1e-5,
        );
    }
    // plain NLL with an explicit positive sigma
    grad_check(
        "gaussian_nll",
        &[mu.clone(), pre.clone()],
        move |g| {
            let mv = g.param(&mu);
            let pv = g.param(&pre);
            let tv = g.constant(target.clone());
            let sp = g.softplus(pv);
            let sigma = g.add_const(sp, 1e-3);
            g.gaussian_nll(mv, sigma, tv)
        },
        1e-5,
    );
}

#[test]
fn embedding_attention_pool() {
    // embedding + matmul + concat_cols + softmax_rows + slice_cols +
    // scale_rows — the OrgLinear business-context path, with repeated
    // indices so gather-scatter accumulation is exercised
    let mut rng = ChaCha8Rng::seed_from_u64(16);
    let table_a = Param::new(rand_tensor(5, 3, -0.8, 0.8, &mut rng));
    let table_b = Param::new(rand_tensor(4, 3, -0.8, 0.8, &mut rng));
    let query = Param::new(rand_tensor(3, 1, -0.9, 0.9, &mut rng));
    let idx_a = vec![0usize, 3, 3, 1];
    let idx_b = vec![2usize, 2, 0, 3];
    grad_check(
        "embedding+attention",
        &[table_a.clone(), table_b.clone(), query.clone()],
        move |g| {
            let ta = g.param(&table_a);
            let tb = g.param(&table_b);
            let qv = g.param(&query);
            let ea = g.embedding(ta, &idx_a);
            let eb = g.embedding(tb, &idx_b);
            let sa = g.matmul(ea, qv);
            let sb = g.matmul(eb, qv);
            let scores = g.concat_cols(&[sa, sb]);
            let weights = g.softmax_rows(scores);
            let wa = g.slice_cols(weights, 0, 1);
            let wb = g.slice_cols(weights, 1, 1);
            let ca = g.scale_rows(ea, wa);
            let cb = g.scale_rows(eb, wb);
            let pooled = g.add(ca, cb);
            g.mean_all(pooled)
        },
        1e-5,
    );
}

#[test]
fn gru_scan_full_sequence() {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let cell = GruCell::new(3, 5, &mut rng);
    let steps = 4;
    let batch = 2;
    let xs = rand_tensor(steps * batch, 3, -1.0, 1.0, &mut rng);
    let params = cell.params();
    grad_check(
        "gru_scan",
        &params,
        move |g| {
            let xv = g.constant(xs.clone());
            let h = cell.scan(g, xv, steps);
            g.mean_all(h)
        },
        1e-5,
    );
}

#[test]
fn gru_scan_matches_unfused_chain_bitwise() {
    let mut rng = ChaCha8Rng::seed_from_u64(18);
    let cell = GruCell::new(3, 6, &mut rng);
    let steps = 5;
    let batch = 3;
    let xs = rand_tensor(steps * batch, 3, -1.0, 1.0, &mut rng);
    let params = cell.params();

    // fused: one gru_scan tape entry
    for p in &params {
        p.zero_grad();
    }
    let mut g = Graph::new();
    let xv = g.constant(xs.clone());
    let h = cell.scan(&mut g, xv, steps);
    let loss = g.mean_all(h);
    let fused_h = g.value(h).clone();
    let fused_loss = g.value(loss).item();
    g.backward(loss);
    let fused_grads: Vec<Tensor> = params.iter().map(Param::grad).collect();

    // unfused: the legacy per-step step_bound chain
    for p in &params {
        p.zero_grad();
    }
    let mut g = Graph::new();
    let nodes = cell.bind(&mut g);
    let mut h = cell.initial_state(&mut g, batch);
    for t in 0..steps {
        let mut step = Tensor::zeros(batch, 3);
        for r in 0..batch {
            for c in 0..3 {
                step[(r, c)] = xs[(t * batch + r, c)];
            }
        }
        let sv = g.constant(step);
        h = cell.step_bound(&mut g, &nodes, sv, h);
    }
    let loss = g.mean_all(h);
    let unfused_h = g.value(h).clone();
    let unfused_loss = g.value(loss).item();
    g.backward(loss);

    assert_eq!(
        fused_h.as_slice(),
        unfused_h.as_slice(),
        "fused scan forward must be bit-identical to the step chain"
    );
    assert_eq!(fused_loss.to_bits(), unfused_loss.to_bits());
    for (i, p) in params.iter().enumerate() {
        assert_eq!(
            fused_grads[i].as_slice(),
            p.grad().as_slice(),
            "weight grad {i} of the fused scan must be bit-identical to the step chain"
        );
    }
}
