//! Weight initialisation.

use rand::Rng;

use crate::tensor::Tensor;

/// Xavier/Glorot uniform limit for a `fan_in × fan_out` weight matrix.
#[must_use]
pub fn xavier_limit(fan_in: usize, fan_out: usize) -> f64 {
    (6.0 / (fan_in + fan_out).max(1) as f64).sqrt()
}

/// Samples a `rows × cols` matrix from `U(-limit, limit)` with the Xavier
/// limit for `fan_in = rows`, `fan_out = cols`.
#[must_use]
pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Tensor {
    Tensor::uniform(rows, cols, xavier_limit(rows, cols), rng)
}

/// Samples a standard-normal matrix via Box–Muller (kept dependency-free).
#[must_use]
pub fn randn<R: Rng>(rows: usize, cols: usize, std: f64, rng: &mut R) -> Tensor {
    let mut data = Vec::with_capacity(rows * cols);
    while data.len() < rows * cols {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < rows * cols {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn xavier_limit_shrinks_with_size() {
        assert!(xavier_limit(100, 100) < xavier_limit(10, 10));
        assert!(xavier_limit(0, 0).is_finite());
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = xavier(20, 30, &mut rng);
        let lim = xavier_limit(20, 30);
        assert!(t.as_slice().iter().all(|v| v.abs() <= lim));
    }

    #[test]
    fn randn_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let t = randn(100, 100, 1.0, &mut rng);
        let mean = t.mean();
        let var = t
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / t.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn randn_odd_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let t = randn(3, 3, 2.0, &mut rng);
        assert_eq!(t.len(), 9);
    }
}
