//! A minimal reverse-mode autodiff tensor library.
//!
//! This crate is the numerical substrate for the GFS demand forecasters
//! (`gfs-forecast`). The paper trains OrgLinear and six baselines with
//! PyTorch; here everything — dense tensors, a dynamic tape, layers,
//! optimizers and losses — is implemented from scratch in safe Rust so the
//! whole reproduction is dependency-light and deterministic.
//!
//! # Examples
//!
//! Train `y = 2x` with one linear neuron:
//!
//! ```
//! use gfs_nn::{Adam, Graph, Linear, Optimizer, Tensor, loss};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let layer = Linear::new(1, 1, &mut rng);
//! let mut opt = Adam::new(layer.params(), 0.1);
//! for _ in 0..700 {
//!     let mut g = Graph::new();
//!     let x = g.constant(Tensor::col(&[1.0, 2.0, 3.0]));
//!     let t = g.constant(Tensor::col(&[2.0, 4.0, 6.0]));
//!     let y = layer.forward(&mut g, x);
//!     let l = loss::mse(&mut g, y, t);
//!     g.backward(l);
//!     opt.step();
//! }
//! let mut g = Graph::new();
//! let x = g.constant(Tensor::col(&[10.0]));
//! let y = layer.forward(&mut g, x);
//! assert!((g.value(y).item() - 20.0).abs() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
pub mod init;
mod layers;
pub mod loss;
mod optim;
mod param;
mod tensor;

pub use graph::{sigmoid, softplus, Graph, Var};
pub use layers::{Attention, Embedding, GruCell, GruCellNodes, Linear};
pub use optim::{Adam, Optimizer, Sgd};
pub use param::Param;
pub use tensor::Tensor;
