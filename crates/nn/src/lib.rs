//! A minimal reverse-mode autodiff tensor library on an index-based
//! tape arena.
//!
//! This crate is the numerical substrate for the GFS demand forecasters
//! (`gfs-forecast`). The paper trains OrgLinear and six baselines with
//! PyTorch; here everything — dense tensors, a flat tape, layers,
//! optimizers and losses — is implemented from scratch in safe Rust so the
//! whole reproduction is dependency-light and deterministic.
//!
//! # Tape architecture
//!
//! [`Graph`] is not a pointer-linked graph but a **tape arena**: a flat
//! `Vec<Op>` of data-only op descriptors plus a parallel values arena of
//! [`Tensor`]s, both addressed by the [`TapeIndex`] newtype ([`Var`] is
//! an alias). Recording an op pushes one enum value and one result
//! tensor — no per-node heap allocation, no boxed closures, no `Rc`
//! graph edges. The backward pass is a single reverse walk over the
//! tape with a `match` per op.
//!
//! ## Arena lifecycle
//!
//! A `Graph` is built once and **reused across batches**:
//!
//! 1. [`Graph::reset`] rewinds the tape to length zero but keeps every
//!    buffer (ops, values, gradients, scratch, the shared operand pool),
//!    so a warm batch re-records into memory allocated by the first.
//!    The `forecast-alloc-gate` CI lane pins this: a steady-state
//!    training step (forward + loss + backward + Adam) performs **zero**
//!    heap allocations.
//! 2. [`Graph::constant_slot`] hands back a reusable input slot whose
//!    contents the caller overwrites via [`Graph::slot_mut`] — batch
//!    data is written in place rather than copied from a fresh tensor.
//! 3. [`Graph::param`] shares a [`Param`]'s tensor copy-on-write; the
//!    share is released by [`Graph::backward`] (training) or
//!    [`Graph::finish`] (inference) so the optimizer's in-place update
//!    never clones weights.
//!
//! ## `TapeIndex` invariants
//!
//! A [`TapeIndex`] is only meaningful for the `Graph` that issued it,
//! and only until that graph's next [`Graph::reset`]; indices are dense
//! and monotonically increasing in recording order, so an op's operands
//! always precede it on the tape. Using a stale index panics (or reads
//! a stale slot) rather than corrupting memory — the arena is fully
//! safe code — but it is still a logic error; the `gfs_lint`
//! `tape-alloc` rule and the gradient-check suite guard the hot paths.
//!
//! ## Fusion and float reassociation
//!
//! Fused ops (`affine`, `affine2`, `blend`, `gaussian_nll_softplus`,
//! and the sequence-level GRU scan [`GruCell::scan`]) are **bit-compatible**
//! with the op chains they replace: they evaluate the same expressions
//! in the same association order, just without materialising
//! intermediates on the tape. `gru_scan` in particular is pinned
//! bit-identical — values and gradients — to the unfused per-step
//! chain by `tests/grad_check.rs`. The one deliberate reassociation in
//! the stack lives outside this crate: the forecast decomposition's
//! prefix-sum moving average, documented at its definition. Anything
//! that would reassociate sums (blocked matmul tilings, SIMD
//! reductions) is out of contract for this crate, because golden tests
//! pin training trajectories bit-for-bit.
//!
//! # Examples
//!
//! Train `y = 2x` with one linear neuron:
//!
//! ```
//! use gfs_nn::{Adam, Graph, Linear, Optimizer, Tensor, loss};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let layer = Linear::new(1, 1, &mut rng);
//! let mut opt = Adam::new(layer.params(), 0.1);
//! for _ in 0..700 {
//!     let mut g = Graph::new();
//!     let x = g.constant(Tensor::col(&[1.0, 2.0, 3.0]));
//!     let t = g.constant(Tensor::col(&[2.0, 4.0, 6.0]));
//!     let y = layer.forward(&mut g, x);
//!     let l = loss::mse(&mut g, y, t);
//!     g.backward(l);
//!     opt.step();
//! }
//! let mut g = Graph::new();
//! let x = g.constant(Tensor::col(&[10.0]));
//! let y = layer.forward(&mut g, x);
//! assert!((g.value(y).item() - 20.0).abs() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
pub mod init;
mod layers;
pub mod loss;
mod optim;
mod param;
mod tensor;

pub use graph::{sigmoid, softplus, Graph, TapeIndex, Var};
pub use layers::{Attention, Embedding, GruCell, GruCellNodes, Linear};
pub use optim::{Adam, Optimizer, Sgd};
pub use param::Param;
pub use tensor::Tensor;
