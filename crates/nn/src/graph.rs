//! Reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a tape of operations recorded during a forward pass. Each
//! operation returns a [`Var`] handle; calling [`Graph::backward`] on a
//! scalar output propagates gradients to every [`Param`] leaf.
//!
//! Nodes only ever reference earlier nodes, so the reverse insertion order
//! is a valid reverse topological order — backpropagation is one linear
//! sweep.

use crate::param::Param;
use crate::tensor::Tensor;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug)]
enum Op {
    /// Constant leaf: no gradient.
    Const,
    /// Trainable leaf: gradient flushes into the shared [`Param`].
    Param(Param),
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Div(usize, usize),
    MatMul(usize, usize),
    /// Fused `x · w + b` with a broadcast bias row.
    Affine(usize, usize, usize),
    /// `x (n×m) + row (1×m)` broadcast over rows.
    AddRow(usize, usize),
    Scale(usize, f64),
    AddConst(usize),
    Exp(usize),
    Ln(usize),
    Tanh(usize),
    Sigmoid(usize),
    Relu(usize),
    Softplus(usize),
    SumAll(usize),
    MeanAll(usize),
    Transpose(usize),
    SoftmaxRows(usize),
    ConcatCols(Vec<usize>),
    /// Row-gather from a table node.
    Embedding {
        table: usize,
        indices: Vec<usize>,
    },
    /// Fused `x · w + h · u + b` (the GRU gate pre-activation).
    Affine2 {
        x: usize,
        w: usize,
        h: usize,
        u: usize,
        b: usize,
    },
    /// Fused `(1 − gate) ⊙ a + gate ⊙ b` (the GRU state blend).
    Blend {
        gate: usize,
        a: usize,
        b: usize,
    },
    /// Fused Gaussian NLL: `mean(ln σ + ((y−μ)/σ)²/2) + ln(2π)/2`.
    GaussianNll {
        mu: usize,
        sigma: usize,
        target: usize,
    },
    /// Fused heteroscedastic head: `σ = softplus(pre) + floor` folded into
    /// the Gaussian NLL above.
    GaussianNllSoftplus {
        mu: usize,
        pre: usize,
        target: usize,
        floor: f64,
    },
    /// Multiply row `r` of `x` by `col[r]` (`col` is `n × 1`).
    ScaleRows(usize, usize),
    /// Columns `[start, start + len)` of `x`.
    SliceCols {
        x: usize,
        start: usize,
    },
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
}

/// A dynamic computation graph (tape).
///
/// # Examples
///
/// ```
/// use gfs_nn::{Graph, Param, Tensor};
///
/// let w = Param::new(Tensor::scalar(3.0));
/// let mut g = Graph::new();
/// let x = g.constant(Tensor::scalar(2.0));
/// let wv = g.param(&w);
/// let y = g.mul(x, wv); // y = 2w
/// g.backward(y);
/// assert_eq!(w.grad().item(), 2.0);
/// ```
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// The forward value of a variable.
    #[must_use]
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Records a constant (non-trainable) leaf.
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Const)
    }

    /// Records a trainable parameter leaf; gradients accumulate into `p`.
    pub fn param(&mut self, p: &Param) -> Var {
        let value = p.value().clone();
        self.push(value, Op::Param(p.clone()))
    }

    /// Element-wise sum. Shapes must match.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x + y);
        self.push(v, Op::Add(a.0, b.0))
    }

    /// Element-wise difference. Shapes must match.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x - y);
        self.push(v, Op::Sub(a.0, b.0))
    }

    /// Element-wise (Hadamard) product. Shapes must match.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x * y);
        self.push(v, Op::Mul(a.0, b.0))
    }

    /// Element-wise quotient. Shapes must match.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x / y);
        self.push(v, Op::Div(a.0, b.0))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::MatMul(a.0, b.0))
    }

    /// Fused affine map `x · w + b` with a `1 × m` bias row broadcast over
    /// the rows — one kernel pass instead of `matmul` + `add_row`. This is
    /// the forward of every linear layer, so it sits on the training hot
    /// path of all forecast models.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree or `b` is not `1 × m`.
    pub fn affine(&mut self, x: Var, w: Var, b: Var) -> Var {
        let v = self.nodes[x.0]
            .value
            .matmul_add(&self.nodes[w.0].value, &self.nodes[b.0].value);
        self.push(v, Op::Affine(x.0, w.0, b.0))
    }

    /// Adds a `1 × m` row vector to every row of an `n × m` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not `1 × m` with matching `m`.
    pub fn add_row(&mut self, x: Var, row: Var) -> Var {
        let xv = &self.nodes[x.0].value;
        let rv = &self.nodes[row.0].value;
        assert_eq!(rv.rows(), 1, "add_row expects a 1×m row vector");
        assert_eq!(rv.cols(), xv.cols(), "add_row column mismatch");
        let mut out = xv.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                out[(r, c)] += rv[(0, c)];
            }
        }
        self.push(out, Op::AddRow(x.0, row.0))
    }

    /// Multiplies by a compile-time constant.
    pub fn scale(&mut self, x: Var, k: f64) -> Var {
        let v = self.nodes[x.0].value.map(|a| a * k);
        self.push(v, Op::Scale(x.0, k))
    }

    /// Adds a compile-time constant element-wise.
    pub fn add_const(&mut self, x: Var, k: f64) -> Var {
        let v = self.nodes[x.0].value.map(|a| a + k);
        self.push(v, Op::AddConst(x.0))
    }

    /// Element-wise negation.
    pub fn neg(&mut self, x: Var) -> Var {
        self.scale(x, -1.0)
    }

    /// Element-wise `exp`.
    pub fn exp(&mut self, x: Var) -> Var {
        let v = self.nodes[x.0].value.map(f64::exp);
        self.push(v, Op::Exp(x.0))
    }

    /// Element-wise natural logarithm.
    pub fn ln(&mut self, x: Var) -> Var {
        let v = self.nodes[x.0].value.map(f64::ln);
        self.push(v, Op::Ln(x.0))
    }

    /// Element-wise `tanh`.
    pub fn tanh(&mut self, x: Var) -> Var {
        let v = self.nodes[x.0].value.map(f64::tanh);
        self.push(v, Op::Tanh(x.0))
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let v = self.nodes[x.0].value.map(sigmoid);
        self.push(v, Op::Sigmoid(x.0))
    }

    /// Element-wise rectified linear unit.
    pub fn relu(&mut self, x: Var) -> Var {
        let v = self.nodes[x.0].value.map(|a| a.max(0.0));
        self.push(v, Op::Relu(x.0))
    }

    /// Element-wise softplus `ln(1 + eˣ)`, the variance-stabilising
    /// activation of Eq. 7, computed in a numerically stable form.
    pub fn softplus(&mut self, x: Var) -> Var {
        let v = self.nodes[x.0].value.map(softplus);
        self.push(v, Op::Softplus(x.0))
    }

    /// Fused gate pre-activation `x · w + h · u + b` — one node for the
    /// recurrent double projection that previously took four (`matmul`,
    /// `matmul`, `add`, `add_row`). Element order matches the unfused
    /// chain: `(xW + hU) + b`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent shapes.
    pub fn affine2(&mut self, x: Var, w: Var, h: Var, u: Var, b: Var) -> Var {
        let mut v = self.nodes[x.0].value.matmul(&self.nodes[w.0].value);
        v.add_matmul(&self.nodes[h.0].value, &self.nodes[u.0].value);
        let bias = &self.nodes[b.0].value;
        assert_eq!(bias.rows(), 1, "affine2 expects a 1×m bias row");
        assert_eq!(bias.cols(), v.cols(), "affine2 bias width mismatch");
        for r in 0..v.rows() {
            let cols = v.cols();
            let row = &mut v.as_mut_slice()[r * cols..(r + 1) * cols];
            for (o, bv) in row.iter_mut().zip(bias.as_slice()) {
                *o += bv;
            }
        }
        self.push(
            v,
            Op::Affine2 {
                x: x.0,
                w: w.0,
                h: h.0,
                u: u.0,
                b: b.0,
            },
        )
    }

    /// Fused convex state blend `(1 − gate) ⊙ a + gate ⊙ b` — one node for
    /// the GRU output mix that previously took five elementwise ops.
    ///
    /// # Panics
    ///
    /// Panics if the three shapes differ.
    pub fn blend(&mut self, gate: Var, a: Var, b: Var) -> Var {
        let gv = &self.nodes[gate.0].value;
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(gv.shape(), av.shape(), "blend shape mismatch");
        assert_eq!(gv.shape(), bv.shape(), "blend shape mismatch");
        let mut out = Tensor::zeros(gv.rows(), gv.cols());
        for (o, ((g, x), y)) in out
            .as_mut_slice()
            .iter_mut()
            .zip(gv.as_slice().iter().zip(av.as_slice()).zip(bv.as_slice()))
        {
            *o = (1.0 - g) * x + g * y;
        }
        self.push(
            out,
            Op::Blend {
                gate: gate.0,
                a: a.0,
                b: b.0,
            },
        )
    }

    /// Fused Gaussian negative log-likelihood
    /// `mean(ln σ + ((y−μ)/σ)²/2) + ln(2π)/2` as one node: a single pass
    /// instead of the eight-op elementwise chain it replaces, with
    /// closed-form gradients to `mu` and `sigma` on the backward sweep.
    /// `target` is treated as a constant (no gradient).
    ///
    /// # Panics
    ///
    /// Panics if the three shapes differ.
    pub fn gaussian_nll(&mut self, mu: Var, sigma: Var, target: Var) -> Var {
        let mv = &self.nodes[mu.0].value;
        let sv = &self.nodes[sigma.0].value;
        let tv = &self.nodes[target.0].value;
        assert_eq!(mv.shape(), sv.shape(), "gaussian_nll shape mismatch");
        assert_eq!(mv.shape(), tv.shape(), "gaussian_nll shape mismatch");
        let mut acc = 0.0;
        for ((m, s), y) in mv.as_slice().iter().zip(sv.as_slice()).zip(tv.as_slice()) {
            let z = (y - m) / s;
            acc += s.ln() + 0.5 * z * z;
        }
        let n = mv.len().max(1) as f64;
        let value = acc / n + 0.5 * (2.0 * std::f64::consts::PI).ln();
        self.push(
            Tensor::scalar(value),
            Op::GaussianNll {
                mu: mu.0,
                sigma: sigma.0,
                target: target.0,
            },
        )
    }

    /// [`Graph::gaussian_nll`] with the variance head folded in:
    /// `σ = softplus(pre) + floor` (Eq. 7 + Eq. 8 as one node). Saves the
    /// intermediate softplus/shift tensors and their backward passes on
    /// the per-batch training path.
    ///
    /// # Panics
    ///
    /// Panics if the three shapes differ.
    pub fn gaussian_nll_softplus(&mut self, mu: Var, pre: Var, target: Var, floor: f64) -> Var {
        let mv = &self.nodes[mu.0].value;
        let pv = &self.nodes[pre.0].value;
        let tv = &self.nodes[target.0].value;
        assert_eq!(
            mv.shape(),
            pv.shape(),
            "gaussian_nll_softplus shape mismatch"
        );
        assert_eq!(
            mv.shape(),
            tv.shape(),
            "gaussian_nll_softplus shape mismatch"
        );
        let mut acc = 0.0;
        for ((m, p), y) in mv.as_slice().iter().zip(pv.as_slice()).zip(tv.as_slice()) {
            let s = softplus(*p) + floor;
            let z = (y - m) / s;
            acc += s.ln() + 0.5 * z * z;
        }
        let n = mv.len().max(1) as f64;
        let value = acc / n + 0.5 * (2.0 * std::f64::consts::PI).ln();
        self.push(
            Tensor::scalar(value),
            Op::GaussianNllSoftplus {
                mu: mu.0,
                pre: pre.0,
                target: target.0,
                floor,
            },
        )
    }

    /// Sum of all elements, as a `1 × 1` scalar.
    pub fn sum_all(&mut self, x: Var) -> Var {
        let v = Tensor::scalar(self.nodes[x.0].value.sum());
        self.push(v, Op::SumAll(x.0))
    }

    /// Mean of all elements, as a `1 × 1` scalar.
    pub fn mean_all(&mut self, x: Var) -> Var {
        let v = Tensor::scalar(self.nodes[x.0].value.mean());
        self.push(v, Op::MeanAll(x.0))
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, x: Var) -> Var {
        let v = self.nodes[x.0].value.transposed();
        self.push(v, Op::Transpose(x.0))
    }

    /// Row-wise softmax (used by every attention block).
    pub fn softmax_rows(&mut self, x: Var) -> Var {
        let xv = &self.nodes[x.0].value;
        let mut out = xv.clone();
        for r in 0..out.rows() {
            let row = &mut out.as_mut_slice()[r * xv.cols()..(r + 1) * xv.cols()];
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        self.push(out, Op::SoftmaxRows(x.0))
    }

    /// Concatenates variables left-to-right (matching row counts).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols requires at least one part");
        let tensors: Vec<&Tensor> = parts.iter().map(|v| &self.nodes[v.0].value).collect();
        let v = Tensor::concat_cols(&tensors);
        self.push(v, Op::ConcatCols(parts.iter().map(|p| p.0).collect()))
    }

    /// Gathers rows `indices` from an embedding `table` (a `vocab × dim`
    /// variable, usually a parameter), producing `len(indices) × dim`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn embedding(&mut self, table: Var, indices: &[usize]) -> Var {
        let tv = &self.nodes[table.0].value;
        let dim = tv.cols();
        let mut out = Tensor::zeros(indices.len(), dim);
        for (r, &i) in indices.iter().enumerate() {
            assert!(
                i < tv.rows(),
                "embedding index {i} out of range ({})",
                tv.rows()
            );
            out.as_mut_slice()[r * dim..(r + 1) * dim].copy_from_slice(tv.row_slice(i));
        }
        self.push(
            out,
            Op::Embedding {
                table: table.0,
                indices: indices.to_vec(),
            },
        )
    }

    /// Multiplies every row `r` of the `n × m` matrix `x` by the scalar
    /// `col[r]` taken from an `n × 1` column vector.
    ///
    /// # Panics
    ///
    /// Panics if `col` is not `n × 1` with matching `n`.
    pub fn scale_rows(&mut self, x: Var, col: Var) -> Var {
        let xv = &self.nodes[x.0].value;
        let cv = &self.nodes[col.0].value;
        assert_eq!(cv.cols(), 1, "scale_rows expects an n×1 column vector");
        assert_eq!(cv.rows(), xv.rows(), "scale_rows row mismatch");
        let mut out = xv.clone();
        for r in 0..out.rows() {
            let k = cv[(r, 0)];
            for c in 0..out.cols() {
                out[(r, c)] *= k;
            }
        }
        self.push(out, Op::ScaleRows(x.0, col.0))
    }

    /// Extracts columns `[start, start + len)` of `x`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    pub fn slice_cols(&mut self, x: Var, start: usize, len: usize) -> Var {
        let xv = &self.nodes[x.0].value;
        assert!(start + len <= xv.cols(), "slice_cols out of range");
        let mut out = Tensor::zeros(xv.rows(), len);
        for r in 0..xv.rows() {
            for c in 0..len {
                out[(r, c)] = xv[(r, start + c)];
            }
        }
        self.push(out, Op::SliceCols { x: x.0, start })
    }

    /// Runs backpropagation from `output`, accumulating gradients into every
    /// [`Param`] reachable from it. `output` is typically a scalar loss; for
    /// non-scalars the seed gradient is all-ones.
    pub fn backward(&mut self, output: Var) {
        let n = self.nodes.len();
        let mut grads: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        let out_shape = self.nodes[output.0].value.shape();
        grads[output.0] = Some(Tensor::full(out_shape.0, out_shape.1, 1.0));

        for i in (0..n).rev() {
            let Some(gy) = grads[i].take() else { continue };
            match &self.nodes[i].op {
                Op::Const => {}
                Op::Param(p) => {
                    p.accumulate_grad(&gy);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, gy.clone());
                    accumulate(&mut grads, *b, gy);
                }
                Op::Sub(a, b) => {
                    let neg = gy.map(|v| -v);
                    accumulate(&mut grads, *a, gy);
                    accumulate(&mut grads, *b, neg);
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    let ga = gy.zip(&self.nodes[b].value, |g, bv| g * bv);
                    let gb = gy.zip(&self.nodes[a].value, |g, av| g * av);
                    accumulate(&mut grads, a, ga);
                    accumulate(&mut grads, b, gb);
                }
                Op::Div(a, b) => {
                    let (a, b) = (*a, *b);
                    let bv = &self.nodes[b].value;
                    let av = &self.nodes[a].value;
                    let ga = gy.zip(bv, |g, d| g / d);
                    let mut gb = gy.zip(av, |g, n| g * n);
                    gb = gb.zip(bv, |g, d| -g / (d * d));
                    accumulate(&mut grads, a, ga);
                    accumulate(&mut grads, b, gb);
                }
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    // contiguous backward kernels (transb packs rhsᵀ once)
                    let ga = gy.matmul_transb(&self.nodes[b].value);
                    let gb = self.nodes[a].value.matmul_transa(&gy);
                    accumulate(&mut grads, a, ga);
                    accumulate(&mut grads, b, gb);
                }
                Op::Affine(x, w, b) => {
                    let (x, w, b) = (*x, *w, *b);
                    let gx = gy.matmul_transb(&self.nodes[w].value);
                    let gw = self.nodes[x].value.matmul_transa(&gy);
                    let mut gb = Tensor::zeros(1, gy.cols());
                    for r in 0..gy.rows() {
                        for c in 0..gy.cols() {
                            gb[(0, c)] += gy[(r, c)];
                        }
                    }
                    accumulate(&mut grads, x, gx);
                    accumulate(&mut grads, w, gw);
                    accumulate(&mut grads, b, gb);
                }
                Op::AddRow(x, row) => {
                    let (x, row) = (*x, *row);
                    let mut gr = Tensor::zeros(1, gy.cols());
                    for r in 0..gy.rows() {
                        for c in 0..gy.cols() {
                            gr[(0, c)] += gy[(r, c)];
                        }
                    }
                    accumulate(&mut grads, x, gy);
                    accumulate(&mut grads, row, gr);
                }
                Op::Scale(x, k) => {
                    let g = gy.map(|v| v * k);
                    accumulate(&mut grads, *x, g);
                }
                Op::AddConst(x) => {
                    accumulate(&mut grads, *x, gy);
                }
                Op::Exp(x) => {
                    let x = *x;
                    let g = gy.zip(&self.nodes[i].value, |g, y| g * y);
                    accumulate(&mut grads, x, g);
                }
                Op::Ln(x) => {
                    let x = *x;
                    let g = gy.zip(&self.nodes[x].value, |g, xv| g / xv);
                    accumulate(&mut grads, x, g);
                }
                Op::Tanh(x) => {
                    let x = *x;
                    let g = gy.zip(&self.nodes[i].value, |g, y| g * (1.0 - y * y));
                    accumulate(&mut grads, x, g);
                }
                Op::Sigmoid(x) => {
                    let x = *x;
                    let g = gy.zip(&self.nodes[i].value, |g, y| g * y * (1.0 - y));
                    accumulate(&mut grads, x, g);
                }
                Op::Relu(x) => {
                    let x = *x;
                    let g = gy.zip(&self.nodes[x].value, |g, xv| if xv > 0.0 { g } else { 0.0 });
                    accumulate(&mut grads, x, g);
                }
                Op::Softplus(x) => {
                    let x = *x;
                    let g = gy.zip(&self.nodes[x].value, |g, xv| g * sigmoid(xv));
                    accumulate(&mut grads, x, g);
                }
                Op::SumAll(x) => {
                    let x = *x;
                    let s = gy.item();
                    let shape = self.nodes[x].value.shape();
                    let g = Tensor::full(shape.0, shape.1, s);
                    accumulate(&mut grads, x, g);
                }
                Op::MeanAll(x) => {
                    let x = *x;
                    let shape = self.nodes[x].value.shape();
                    let n = (shape.0 * shape.1) as f64;
                    let g = Tensor::full(shape.0, shape.1, gy.item() / n);
                    accumulate(&mut grads, x, g);
                }
                Op::Transpose(x) => {
                    let g = gy.transposed();
                    accumulate(&mut grads, *x, g);
                }
                Op::SoftmaxRows(x) => {
                    let x = *x;
                    let y = &self.nodes[i].value;
                    let mut g = Tensor::zeros(gy.rows(), gy.cols());
                    for r in 0..gy.rows() {
                        let dot: f64 = (0..gy.cols()).map(|c| gy[(r, c)] * y[(r, c)]).sum();
                        for c in 0..gy.cols() {
                            g[(r, c)] = (gy[(r, c)] - dot) * y[(r, c)];
                        }
                    }
                    accumulate(&mut grads, x, g);
                }
                Op::ConcatCols(parts) => {
                    let parts = parts.clone();
                    let mut offset = 0;
                    for p in parts {
                        let (rows, cols) = self.nodes[p].value.shape();
                        let mut gp = Tensor::zeros(rows, cols);
                        for r in 0..rows {
                            for c in 0..cols {
                                gp[(r, c)] = gy[(r, offset + c)];
                            }
                        }
                        accumulate(&mut grads, p, gp);
                        offset += cols;
                    }
                }
                Op::Affine2 { x, w, h, u, b } => {
                    let (x, w, h, u, b) = (*x, *w, *h, *u, *b);
                    let gx = gy.matmul_transb(&self.nodes[w].value);
                    let gw = self.nodes[x].value.matmul_transa(&gy);
                    let gh = gy.matmul_transb(&self.nodes[u].value);
                    let gu = self.nodes[h].value.matmul_transa(&gy);
                    let mut gb = Tensor::zeros(1, gy.cols());
                    for r in 0..gy.rows() {
                        for c in 0..gy.cols() {
                            gb[(0, c)] += gy[(r, c)];
                        }
                    }
                    accumulate(&mut grads, x, gx);
                    accumulate(&mut grads, w, gw);
                    accumulate(&mut grads, h, gh);
                    accumulate(&mut grads, u, gu);
                    accumulate(&mut grads, b, gb);
                }
                Op::Blend { gate, a, b } => {
                    let (gate, a, b) = (*gate, *a, *b);
                    let gv = &self.nodes[gate].value;
                    let av = &self.nodes[a].value;
                    let bv = &self.nodes[b].value;
                    let mut gg = Tensor::zeros(gv.rows(), gv.cols());
                    let mut ga = Tensor::zeros(gv.rows(), gv.cols());
                    let mut gb2 = Tensor::zeros(gv.rows(), gv.cols());
                    for i in 0..gy.len() {
                        let g0 = gy.as_slice()[i];
                        let gt = gv.as_slice()[i];
                        gg.as_mut_slice()[i] = g0 * (bv.as_slice()[i] - av.as_slice()[i]);
                        ga.as_mut_slice()[i] = g0 * (1.0 - gt);
                        gb2.as_mut_slice()[i] = g0 * gt;
                    }
                    accumulate(&mut grads, gate, gg);
                    accumulate(&mut grads, a, ga);
                    accumulate(&mut grads, b, gb2);
                }
                Op::GaussianNll { mu, sigma, target } => {
                    let (mu, sigma, target) = (*mu, *sigma, *target);
                    let mv = &self.nodes[mu].value;
                    let sv = &self.nodes[sigma].value;
                    let tv = &self.nodes[target].value;
                    let scale = gy.item() / mv.len().max(1) as f64;
                    let (rows, cols) = mv.shape();
                    let mut gmu = Tensor::zeros(rows, cols);
                    let mut gsigma = Tensor::zeros(rows, cols);
                    for (i, ((m, s), y)) in mv
                        .as_slice()
                        .iter()
                        .zip(sv.as_slice())
                        .zip(tv.as_slice())
                        .enumerate()
                    {
                        let z = (y - m) / s;
                        gmu.as_mut_slice()[i] = scale * (-z / s);
                        gsigma.as_mut_slice()[i] = scale * (1.0 - z * z) / s;
                    }
                    accumulate(&mut grads, mu, gmu);
                    accumulate(&mut grads, sigma, gsigma);
                }
                Op::GaussianNllSoftplus {
                    mu,
                    pre,
                    target,
                    floor,
                } => {
                    let (mu, pre, target, floor) = (*mu, *pre, *target, *floor);
                    let mv = &self.nodes[mu].value;
                    let pv = &self.nodes[pre].value;
                    let tv = &self.nodes[target].value;
                    let scale = gy.item() / mv.len().max(1) as f64;
                    let (rows, cols) = mv.shape();
                    let mut gmu = Tensor::zeros(rows, cols);
                    let mut gpre = Tensor::zeros(rows, cols);
                    for (i, ((m, p), y)) in mv
                        .as_slice()
                        .iter()
                        .zip(pv.as_slice())
                        .zip(tv.as_slice())
                        .enumerate()
                    {
                        let s = softplus(*p) + floor;
                        let z = (y - m) / s;
                        gmu.as_mut_slice()[i] = scale * (-z / s);
                        // ∂L/∂σ · ∂σ/∂pre, with ∂softplus = sigmoid
                        gpre.as_mut_slice()[i] = scale * ((1.0 - z * z) / s) * sigmoid(*p);
                    }
                    accumulate(&mut grads, mu, gmu);
                    accumulate(&mut grads, pre, gpre);
                }
                Op::ScaleRows(x, col) => {
                    let (x, col) = (*x, *col);
                    let cv = &self.nodes[col].value;
                    let xv = &self.nodes[x].value;
                    let mut gx = gy.clone();
                    let mut gc = Tensor::zeros(cv.rows(), 1);
                    for r in 0..gy.rows() {
                        let k = cv[(r, 0)];
                        let mut dot = 0.0;
                        for c in 0..gy.cols() {
                            dot += gy[(r, c)] * xv[(r, c)];
                            gx[(r, c)] = gy[(r, c)] * k;
                        }
                        gc[(r, 0)] = dot;
                    }
                    accumulate(&mut grads, x, gx);
                    accumulate(&mut grads, col, gc);
                }
                Op::SliceCols { x, start } => {
                    let (x, start) = (*x, *start);
                    let (rows, cols) = self.nodes[x].value.shape();
                    let mut gx = Tensor::zeros(rows, cols);
                    for r in 0..gy.rows() {
                        for c in 0..gy.cols() {
                            gx[(r, start + c)] = gy[(r, c)];
                        }
                    }
                    accumulate(&mut grads, x, gx);
                }
                Op::Embedding { table, indices } => {
                    let (table, indices) = (*table, indices.clone());
                    let (vocab, dim) = self.nodes[table].value.shape();
                    let mut gt = Tensor::zeros(vocab, dim);
                    for (r, idx) in indices.iter().enumerate() {
                        for c in 0..dim {
                            gt[(*idx, c)] += gy[(r, c)];
                        }
                    }
                    accumulate(&mut grads, table, gt);
                }
            }
        }
    }
}

fn accumulate(grads: &mut [Option<Tensor>], idx: usize, g: Tensor) {
    match &mut grads[idx] {
        Some(existing) => existing.add_scaled(&g, 1.0),
        slot @ None => *slot = Some(g),
    }
}

/// Numerically stable logistic sigmoid.
#[must_use]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable softplus `ln(1 + eˣ)`.
#[must_use]
pub fn softplus(x: f64) -> f64 {
    x.max(0.0) + (-x.abs()).exp().ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(f: impl Fn(f64) -> f64, x: f64) -> f64 {
        let h = 1e-6;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn add_mul_gradients() {
        // y = (a + b) * a, dy/da = 2a + b, dy/db = a
        let a = Param::new(Tensor::scalar(3.0));
        let b = Param::new(Tensor::scalar(5.0));
        let mut g = Graph::new();
        let av = g.param(&a);
        let bv = g.param(&b);
        let s = g.add(av, bv);
        let y = g.mul(s, av);
        assert_eq!(g.value(y).item(), 24.0);
        g.backward(y);
        assert_eq!(a.grad().item(), 11.0);
        assert_eq!(b.grad().item(), 3.0);
    }

    #[test]
    fn div_gradient_matches_finite_difference() {
        let a0 = 2.0;
        let b0 = 7.0;
        let a = Param::new(Tensor::scalar(a0));
        let b = Param::new(Tensor::scalar(b0));
        let mut g = Graph::new();
        let av = g.param(&a);
        let bv = g.param(&b);
        let y = g.div(av, bv);
        g.backward(y);
        let da = finite_diff(|x| x / b0, a0);
        let db = finite_diff(|x| a0 / x, b0);
        assert!((a.grad().item() - da).abs() < 1e-6);
        assert!((b.grad().item() - db).abs() < 1e-6);
    }

    #[test]
    fn matmul_gradient() {
        // L = sum(A·B): dL/dA = 1·Bᵀ, dL/dB = Aᵀ·1
        let a = Param::new(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = Param::new(Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]));
        let mut g = Graph::new();
        let av = g.param(&a);
        let bv = g.param(&b);
        let p = g.matmul(av, bv);
        let loss = g.sum_all(p);
        g.backward(loss);
        assert_eq!(a.grad().row_slice(0), &[11.0, 15.0]);
        assert_eq!(a.grad().row_slice(1), &[11.0, 15.0]);
        assert_eq!(b.grad().row_slice(0), &[4.0, 4.0]);
        assert_eq!(b.grad().row_slice(1), &[6.0, 6.0]);
    }

    #[test]
    fn unary_gradients_match_finite_difference() {
        type UnaryCase = (fn(&mut Graph, Var) -> Var, fn(f64) -> f64, f64);
        let cases: Vec<UnaryCase> = vec![
            (Graph::exp, f64::exp, 0.7),
            (Graph::ln, f64::ln, 1.3),
            (Graph::tanh, f64::tanh, 0.4),
            (Graph::sigmoid, sigmoid, -0.6),
            (Graph::softplus, softplus, -1.1),
        ];
        for (op, f, x0) in cases {
            let p = Param::new(Tensor::scalar(x0));
            let mut g = Graph::new();
            let x = g.param(&p);
            let y = op(&mut g, x);
            g.backward(y);
            let expected = finite_diff(f, x0);
            assert!(
                (p.grad().item() - expected).abs() < 1e-5,
                "gradient mismatch at {x0}: {} vs {expected}",
                p.grad().item()
            );
        }
    }

    #[test]
    fn relu_gradient_gates() {
        let p = Param::new(Tensor::row(&[-1.0, 2.0]));
        let mut g = Graph::new();
        let x = g.param(&p);
        let y = g.relu(x);
        let s = g.sum_all(y);
        g.backward(s);
        assert_eq!(p.grad().as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one_and_grad_is_orthogonal() {
        let p = Param::new(Tensor::row(&[1.0, 2.0, 3.0]));
        let mut g = Graph::new();
        let x = g.param(&p);
        let y = g.softmax_rows(x);
        let row_sum: f64 = g.value(y).as_slice().iter().sum();
        assert!((row_sum - 1.0).abs() < 1e-12);
        // L = sum(softmax) == 1 identically, so the gradient must vanish.
        let s = g.sum_all(y);
        g.backward(s);
        for &v in p.grad().as_slice() {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn add_row_broadcast_gradient() {
        let x = Param::new(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = Param::new(Tensor::row(&[10.0, 20.0]));
        let mut g = Graph::new();
        let xv = g.param(&x);
        let bv = g.param(&b);
        let y = g.add_row(xv, bv);
        assert_eq!(g.value(y).row_slice(1), &[13.0, 24.0]);
        let s = g.sum_all(y);
        g.backward(s);
        assert_eq!(b.grad().as_slice(), &[2.0, 2.0], "bias grad sums over rows");
        assert_eq!(x.grad().as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn concat_cols_splits_gradient() {
        let a = Param::new(Tensor::row(&[1.0]));
        let b = Param::new(Tensor::row(&[2.0, 3.0]));
        let mut g = Graph::new();
        let av = g.param(&a);
        let bv = g.param(&b);
        let c = g.concat_cols(&[av, bv]);
        let w = g.constant(Tensor::row(&[1.0, 10.0, 100.0]));
        let prod = g.mul(c, w);
        let s = g.sum_all(prod);
        g.backward(s);
        assert_eq!(a.grad().as_slice(), &[1.0]);
        assert_eq!(b.grad().as_slice(), &[10.0, 100.0]);
    }

    #[test]
    fn embedding_scatters_gradient() {
        let table = Param::new(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
        let mut g = Graph::new();
        let t = g.param(&table);
        let e = g.embedding(t, &[2, 0, 2]);
        assert_eq!(g.value(e).row_slice(0), &[5.0, 6.0]);
        let s = g.sum_all(e);
        g.backward(s);
        // row 2 gathered twice, row 0 once, row 1 never
        assert_eq!(table.grad().row_slice(0), &[1.0, 1.0]);
        assert_eq!(table.grad().row_slice(1), &[0.0, 0.0]);
        assert_eq!(table.grad().row_slice(2), &[2.0, 2.0]);
    }

    #[test]
    fn mean_all_divides_gradient() {
        let p = Param::new(Tensor::row(&[2.0, 4.0, 6.0, 8.0]));
        let mut g = Graph::new();
        let x = g.param(&p);
        let m = g.mean_all(x);
        assert_eq!(g.value(m).item(), 5.0);
        g.backward(m);
        assert_eq!(p.grad().as_slice(), &[0.25, 0.25, 0.25, 0.25]);
    }

    #[test]
    fn transpose_gradient_round_trips() {
        let p = Param::new(Tensor::from_rows(&[&[1.0, 2.0, 3.0]]));
        let mut g = Graph::new();
        let x = g.param(&p);
        let t = g.transpose(x);
        let w = g.constant(Tensor::col(&[1.0, 2.0, 3.0]));
        let prod = g.mul(t, w);
        let s = g.sum_all(prod);
        g.backward(s);
        assert_eq!(p.grad().as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn reused_param_accumulates_gradients() {
        // y = w * w => dy/dw = 2w
        let w = Param::new(Tensor::scalar(4.0));
        let mut g = Graph::new();
        let w1 = g.param(&w);
        let w2 = g.param(&w);
        let y = g.mul(w1, w2);
        g.backward(y);
        assert_eq!(w.grad().item(), 8.0);
    }

    #[test]
    fn scale_and_add_const() {
        let p = Param::new(Tensor::scalar(3.0));
        let mut g = Graph::new();
        let x = g.param(&p);
        let y = g.scale(x, 2.0);
        let z = g.add_const(y, 10.0);
        assert_eq!(g.value(z).item(), 16.0);
        g.backward(z);
        assert_eq!(p.grad().item(), 2.0);
    }

    #[test]
    fn scale_rows_values_and_gradient() {
        let x = Param::new(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let c = Param::new(Tensor::col(&[10.0, 100.0]));
        let mut g = Graph::new();
        let xv = g.param(&x);
        let cv = g.param(&c);
        let y = g.scale_rows(xv, cv);
        assert_eq!(g.value(y).row_slice(0), &[10.0, 20.0]);
        assert_eq!(g.value(y).row_slice(1), &[300.0, 400.0]);
        let s = g.sum_all(y);
        g.backward(s);
        assert_eq!(x.grad().row_slice(0), &[10.0, 10.0]);
        assert_eq!(x.grad().row_slice(1), &[100.0, 100.0]);
        assert_eq!(c.grad().as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn slice_cols_values_and_gradient() {
        let x = Param::new(Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]));
        let mut g = Graph::new();
        let xv = g.param(&x);
        let y = g.slice_cols(xv, 1, 2);
        assert_eq!(g.value(y).row_slice(0), &[2.0, 3.0]);
        let s = g.sum_all(y);
        g.backward(s);
        assert_eq!(x.grad().row_slice(0), &[0.0, 1.0, 1.0]);
        assert_eq!(x.grad().row_slice(1), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn stable_activations_do_not_overflow() {
        assert!(softplus(1_000.0).is_finite());
        assert!(softplus(-1_000.0) >= 0.0);
        assert!((sigmoid(1_000.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-1_000.0) >= 0.0);
    }
}
