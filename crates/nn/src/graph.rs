//! Reverse-mode automatic differentiation over an index-based tape arena.
//!
//! A [`Graph`] records a forward pass as a flat `Vec` of heap-free ops plus
//! a parallel `Vec<Tensor>` of forward values, addressed by [`TapeIndex`]
//! (the [`Var`] handle). Nodes only ever reference earlier nodes, so the
//! reverse insertion order is a valid reverse topological order —
//! backpropagation is one linear sweep.
//!
//! Unlike the per-node allocated graph this replaced, the arena is
//! **reusable**: [`Graph::reset`] rewinds the tape without dropping any
//! buffer, so a trainer that replays the same graph shape every batch
//! reaches a steady state with zero allocations per step (see the
//! crate-level docs for the lifecycle and float-ordering contract, and the
//! `alloc_gate` test lane in `gfs-forecast` that enforces it).

use crate::layers::GruCellNodes;
use crate::param::Param;
use crate::tensor::{matmul_slices, matmul_transa_slices, Tensor};

/// Index of a node on a [`Graph`] tape.
///
/// Invariants: a `TapeIndex` is only meaningful on the graph that returned
/// it, and only until the next [`Graph::reset`]; an op's operands always
/// have strictly smaller indices than the op itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TapeIndex(u32);

impl TapeIndex {
    #[inline]
    fn ix(self) -> usize {
        self.0 as usize
    }
}

/// Handle to a node in a [`Graph`] (alias of [`TapeIndex`]).
pub type Var = TapeIndex;

/// A recorded tape operation. Operand references are [`TapeIndex`]es and
/// variable-length operand lists live in the graph's shared `aux` pool, so
/// no variant owns heap storage (`Param` is an `Rc` handle bump).
#[derive(Debug)]
enum Op {
    /// Constant leaf: no gradient.
    Const,
    /// Trainable leaf: gradient flushes into the shared [`Param`].
    Param(Param),
    Add(TapeIndex, TapeIndex),
    Sub(TapeIndex, TapeIndex),
    Mul(TapeIndex, TapeIndex),
    Div(TapeIndex, TapeIndex),
    MatMul(TapeIndex, TapeIndex),
    /// Fused `x · w + b` with a broadcast bias row.
    Affine(TapeIndex, TapeIndex, TapeIndex),
    /// `x (n×m) + row (1×m)` broadcast over rows.
    AddRow(TapeIndex, TapeIndex),
    Scale(TapeIndex, f64),
    AddConst(TapeIndex),
    Exp(TapeIndex),
    Ln(TapeIndex),
    Tanh(TapeIndex),
    Sigmoid(TapeIndex),
    Relu(TapeIndex),
    Softplus(TapeIndex),
    SumAll(TapeIndex),
    MeanAll(TapeIndex),
    Transpose(TapeIndex),
    SoftmaxRows(TapeIndex),
    /// Parts live in `aux[aux_start..aux_start + parts]`.
    ConcatCols {
        aux_start: u32,
        parts: u32,
    },
    /// Row-gather from a table node; indices live in the `aux` pool.
    Embedding {
        table: TapeIndex,
        aux_start: u32,
        len: u32,
    },
    /// Fused `x · w + h · u + b` (the GRU gate pre-activation).
    Affine2 {
        x: TapeIndex,
        w: TapeIndex,
        h: TapeIndex,
        u: TapeIndex,
        b: TapeIndex,
    },
    /// Fused `(1 − gate) ⊙ a + gate ⊙ b` (the GRU state blend).
    Blend {
        gate: TapeIndex,
        a: TapeIndex,
        b: TapeIndex,
    },
    /// Fused Gaussian NLL: `mean(ln σ + ((y−μ)/σ)²/2) + ln(2π)/2`.
    GaussianNll {
        mu: TapeIndex,
        sigma: TapeIndex,
        target: TapeIndex,
    },
    /// Fused heteroscedastic head: `σ = softplus(pre) + floor` folded into
    /// the Gaussian NLL above.
    GaussianNllSoftplus {
        mu: TapeIndex,
        pre: TapeIndex,
        target: TapeIndex,
        floor: f64,
    },
    /// Multiply row `r` of `x` by `col[r]` (`col` is `n × 1`).
    ScaleRows(TapeIndex, TapeIndex),
    /// Columns `[start, start + out.cols)` of `x`.
    SliceCols {
        x: TapeIndex,
        start: u32,
    },
    /// A whole unrolled GRU recurrence as one tape entry; all per-step
    /// state lives in `scans[state]`.
    GruScan {
        state: u32,
    },
}

/// Saved forward activations and backward scratch of one [`Graph::gru_scan`]
/// call. Everything is preallocated and reshaped in place, so replaying a
/// scan of the same shape allocates nothing.
#[derive(Debug)]
struct GruScanState {
    xs: TapeIndex,
    steps: u32,
    batch: u32,
    in_dim: u32,
    hidden: u32,
    wz: TapeIndex,
    uz: TapeIndex,
    bz: TapeIndex,
    wr: TapeIndex,
    ur: TapeIndex,
    br: TapeIndex,
    wh: TapeIndex,
    uh: TapeIndex,
    bh: TapeIndex,
    /// Hidden states `h_0..h_steps`, `(steps+1)·batch × hidden`.
    hs: Tensor,
    /// Post-sigmoid update gates per step, `steps·batch × hidden`.
    zs: Tensor,
    /// Post-sigmoid reset gates per step.
    rs: Tensor,
    /// Post-tanh candidates per step.
    cands: Tensor,
    /// `r ⊙ h_prev` scratch (`batch × hidden`), recomputed per step.
    rh: Tensor,
    // BPTT scratch, all `batch × hidden` unless noted.
    gh: Tensor,
    ghp: Tensor,
    gz: Tensor,
    gr: Tensor,
    gcand: Tensor,
    gtmp: Tensor,
    /// Transposed recurrent weights, computed once per backward.
    uzt: Tensor,
    urt: Tensor,
    uht: Tensor,
    /// Per-step weight-gradient scratch (`in_dim × hidden`), accumulated
    /// into the tape grad slot step by step to keep the unfused float
    /// order.
    step_gw: Tensor,
    /// Per-step recurrent-weight-gradient scratch (`hidden × hidden`).
    step_gu: Tensor,
    /// Per-step bias-gradient scratch (`1 × hidden`).
    step_gb: Tensor,
}

impl GruScanState {
    fn empty() -> Self {
        let z = TapeIndex(0);
        let t = || Tensor::zeros(0, 0);
        GruScanState {
            xs: z,
            steps: 0,
            batch: 0,
            in_dim: 0,
            hidden: 0,
            wz: z,
            uz: z,
            bz: z,
            wr: z,
            ur: z,
            br: z,
            wh: z,
            uh: z,
            bh: z,
            hs: t(),
            zs: t(),
            rs: t(),
            cands: t(),
            rh: t(),
            gh: t(),
            ghp: t(),
            gz: t(),
            gr: t(),
            gcand: t(),
            gtmp: t(),
            uzt: t(),
            urt: t(),
            uht: t(),
            step_gw: t(),
            step_gu: t(),
            step_gb: t(),
        }
    }
}

/// A dynamic computation graph (tape) backed by a reusable arena.
///
/// # Examples
///
/// ```
/// use gfs_nn::{Graph, Param, Tensor};
///
/// let w = Param::new(Tensor::scalar(3.0));
/// let mut g = Graph::new();
/// let x = g.constant(Tensor::scalar(2.0));
/// let wv = g.param(&w);
/// let y = g.mul(x, wv); // y = 2w
/// g.backward(y);
/// assert_eq!(w.grad().item(), 2.0);
/// ```
///
/// Reusing the arena across batches:
///
/// ```
/// use gfs_nn::{Graph, Param, Tensor};
///
/// let w = Param::new(Tensor::scalar(3.0));
/// let mut g = Graph::new();
/// for step in 0..2 {
///     g.reset(); // rewinds the tape, keeps every buffer
///     let x = g.constant_slot(1, 1);
///     g.slot_mut(x)[0] = step as f64;
///     let wv = g.param(&w);
///     let y = g.mul(x, wv);
///     g.backward(y);
/// }
/// assert_eq!(w.grad().item(), 1.0); // 0 + 1
/// ```
#[derive(Debug)]
pub struct Graph {
    ops: Vec<Op>,
    /// Forward value of each op; `values.len() >= ops.len()` and surplus
    /// entries are retired buffers awaiting reuse.
    values: Vec<Tensor>,
    /// Gradient slot per op, reshaped in place every backward sweep.
    grads: Vec<Tensor>,
    /// Whether `grads[i]` holds a live gradient this sweep.
    grad_seen: Vec<bool>,
    /// Shared pool for variable-length operand lists (concat parts,
    /// embedding indices); rewound by `reset`, never shrunk.
    aux: Vec<u32>,
    aux_len: usize,
    /// Arena of GRU scan states; rewound by `reset`, never shrunk.
    scans: Vec<GruScanState>,
    scan_count: usize,
    /// General backward scratch (revisit products, scatter buffers).
    scratch: Tensor,
    /// Transpose scratch for `∂x = ∂y · Wᵀ` backward kernels.
    scratch_t: Tensor,
    /// The shared 0×0 tensor parked in released parameter slots.
    empty: Tensor,
}

impl Graph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Graph {
            ops: Vec::new(),
            values: Vec::new(),
            grads: Vec::new(),
            grad_seen: Vec::new(),
            aux: Vec::new(),
            aux_len: 0,
            scans: Vec::new(),
            scan_count: 0,
            scratch: Tensor::zeros(0, 0),
            scratch_t: Tensor::zeros(0, 0),
            empty: Tensor::zeros(0, 0),
        }
    }

    /// Number of recorded nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the tape is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Rewinds the tape for the next forward pass without dropping any
    /// buffer: values, gradient slots, the aux pool and scan states all
    /// keep their allocations and are reshaped in place by the replay.
    /// Also releases parameter value shares (see [`Graph::finish`]).
    pub fn reset(&mut self) {
        self.release_params();
        self.ops.clear();
        self.aux_len = 0;
        self.scan_count = 0;
    }

    /// Ensures `values[ops.len()]` exists and returns that index. Pushes a
    /// placeholder only when the arena has never been this deep (cold
    /// path); at steady state the retired buffer already there is reused.
    fn reserve(&mut self) -> usize {
        let i = self.ops.len();
        assert!(u32::try_from(i).is_ok(), "tape overflow");
        if i == self.values.len() {
            self.values.push(self.empty.clone());
        }
        i
    }

    fn commit(&mut self, op: Op) -> Var {
        self.ops.push(op);
        TapeIndex((self.ops.len() - 1) as u32)
    }

    /// Reshapes the output slot at `i` (contents stale, caller overwrites)
    /// and returns `(earlier values, output)` — the split is sound because
    /// operands always precede their op.
    fn out_slot(
        values: &mut [Tensor],
        i: usize,
        rows: usize,
        cols: usize,
    ) -> (&[Tensor], &mut Tensor) {
        let (head, tail) = values.split_at_mut(i);
        let out = &mut tail[0];
        if out.is_shared() {
            *out = Tensor::zeros(rows, cols);
        } else {
            out.resize_reuse(rows, cols);
        }
        (head, out)
    }

    fn aux_push(&mut self, v: u32) {
        if self.aux_len == self.aux.len() {
            self.aux.push(v);
        } else {
            self.aux[self.aux_len] = v;
        }
        self.aux_len += 1;
    }

    /// The forward value of a variable.
    ///
    /// Parameter values are only live until [`Graph::backward`],
    /// [`Graph::finish`] or [`Graph::reset`] releases them.
    #[must_use]
    pub fn value(&self, v: Var) -> &Tensor {
        &self.values[v.ix()]
    }

    /// Records a constant (non-trainable) leaf from an owned tensor.
    ///
    /// For steady-state allocation-free replay prefer
    /// [`Graph::constant_slot`], which reuses the arena buffer in place.
    pub fn constant(&mut self, t: Tensor) -> Var {
        let i = self.reserve();
        self.values[i] = t;
        self.commit(Op::Const)
    }

    /// Records a constant leaf of shape `rows × cols` whose contents are
    /// **stale** until the caller overwrites them through
    /// [`Graph::slot_mut`]. Reuses the retired buffer in the slot, so a
    /// replayed tape performs no allocation.
    pub fn constant_slot(&mut self, rows: usize, cols: usize) -> Var {
        let i = self.reserve();
        let v = &mut self.values[i];
        if v.is_shared() {
            *v = Tensor::zeros(rows, cols);
        } else {
            v.resize_reuse(rows, cols);
        }
        self.commit(Op::Const)
    }

    /// Mutable view of a constant slot's buffer, for filling inputs in
    /// place. The caller must overwrite every element (the buffer holds
    /// stale values from the previous replay).
    pub fn slot_mut(&mut self, v: Var) -> &mut [f64] {
        self.values[v.ix()].as_mut_slice()
    }

    /// Mutable views of two distinct slots at once (e.g. writing a trend
    /// row and a cyclical row of a decomposition in one pass).
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` are the same variable.
    pub fn two_slots_mut(&mut self, a: Var, b: Var) -> (&mut [f64], &mut [f64]) {
        let (ai, bi) = (a.ix(), b.ix());
        assert_ne!(ai, bi, "two_slots_mut requires distinct variables");
        if ai < bi {
            let (lo, hi) = self.values.split_at_mut(bi);
            (lo[ai].as_mut_slice(), hi[0].as_mut_slice())
        } else {
            let (lo, hi) = self.values.split_at_mut(ai);
            (hi[0].as_mut_slice(), lo[bi].as_mut_slice())
        }
    }

    /// Records a trainable parameter leaf; gradients accumulate into `p`.
    ///
    /// The slot holds a copy-on-write share of the parameter's buffer (no
    /// copy); the share is released by [`Graph::backward`],
    /// [`Graph::finish`] or [`Graph::reset`] so optimizer updates stay
    /// in place.
    pub fn param(&mut self, p: &Param) -> Var {
        let i = self.reserve();
        self.values[i] = p.value();
        self.commit(Op::Param(p.clone()))
    }

    /// Releases parameter value shares after a forward-only pass (predict
    /// paths). [`Graph::backward`] does this automatically; without it the
    /// next optimizer update would copy every shared weight buffer.
    pub fn finish(&mut self) {
        self.release_params();
    }

    fn release_params(&mut self) {
        for (i, op) in self.ops.iter().enumerate() {
            if matches!(op, Op::Param(_)) {
                self.values[i] = self.empty.clone();
            }
        }
    }

    fn binary_ew(&mut self, a: Var, b: Var, op: Op, f: impl Fn(f64, f64) -> f64) -> Var {
        let i = self.reserve();
        let (rows, cols) = self.values[a.ix()].shape();
        assert_eq!(
            (rows, cols),
            self.values[b.ix()].shape(),
            "elementwise shape mismatch"
        );
        let (head, out) = Self::out_slot(&mut self.values, i, rows, cols);
        let (av, bv) = (head[a.ix()].as_slice(), head[b.ix()].as_slice());
        for ((o, x), y) in out.as_mut_slice().iter_mut().zip(av).zip(bv) {
            *o = f(*x, *y);
        }
        self.commit(op)
    }

    fn unary_ew(&mut self, x: Var, op: Op, f: impl Fn(f64) -> f64) -> Var {
        let i = self.reserve();
        let (rows, cols) = self.values[x.ix()].shape();
        let (head, out) = Self::out_slot(&mut self.values, i, rows, cols);
        let xv = head[x.ix()].as_slice();
        for (o, v) in out.as_mut_slice().iter_mut().zip(xv) {
            *o = f(*v);
        }
        self.commit(op)
    }

    /// Element-wise sum. Shapes must match.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.binary_ew(a, b, Op::Add(a, b), |x, y| x + y)
    }

    /// Element-wise difference. Shapes must match.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.binary_ew(a, b, Op::Sub(a, b), |x, y| x - y)
    }

    /// Element-wise (Hadamard) product. Shapes must match.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        self.binary_ew(a, b, Op::Mul(a, b), |x, y| x * y)
    }

    /// Element-wise quotient. Shapes must match.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        self.binary_ew(a, b, Op::Div(a, b), |x, y| x / y)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let i = self.reserve();
        let (head, tail) = self.values.split_at_mut(i);
        head[a.ix()].matmul_add_into(&head[b.ix()], None, &mut tail[0]);
        self.commit(Op::MatMul(a, b))
    }

    /// Fused affine map `x · w + b` with a `1 × m` bias row broadcast over
    /// the rows — one kernel pass instead of `matmul` + `add_row`. This is
    /// the forward of every linear layer, so it sits on the training hot
    /// path of all forecast models.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree or `b` is not `1 × m`.
    pub fn affine(&mut self, x: Var, w: Var, b: Var) -> Var {
        let i = self.reserve();
        let (head, tail) = self.values.split_at_mut(i);
        head[x.ix()].matmul_add_into(&head[w.ix()], Some(&head[b.ix()]), &mut tail[0]);
        self.commit(Op::Affine(x, w, b))
    }

    /// Adds a `1 × m` row vector to every row of an `n × m` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not `1 × m` with matching `m`.
    pub fn add_row(&mut self, x: Var, row: Var) -> Var {
        let i = self.reserve();
        {
            let rv = &self.values[row.ix()];
            let xv = &self.values[x.ix()];
            assert_eq!(rv.rows(), 1, "add_row expects a 1×m row vector");
            assert_eq!(rv.cols(), xv.cols(), "add_row column mismatch");
        }
        let (rows, cols) = self.values[x.ix()].shape();
        let (head, out) = Self::out_slot(&mut self.values, i, rows, cols);
        let xs = head[x.ix()].as_slice();
        let rs = head[row.ix()].as_slice();
        let os = out.as_mut_slice();
        for r in 0..rows {
            for c in 0..cols {
                os[r * cols + c] = xs[r * cols + c] + rs[c];
            }
        }
        self.commit(Op::AddRow(x, row))
    }

    /// Multiplies by a compile-time constant.
    pub fn scale(&mut self, x: Var, k: f64) -> Var {
        self.unary_ew(x, Op::Scale(x, k), |a| a * k)
    }

    /// Adds a compile-time constant element-wise.
    pub fn add_const(&mut self, x: Var, k: f64) -> Var {
        self.unary_ew(x, Op::AddConst(x), |a| a + k)
    }

    /// Element-wise negation.
    pub fn neg(&mut self, x: Var) -> Var {
        self.scale(x, -1.0)
    }

    /// Element-wise `exp`.
    pub fn exp(&mut self, x: Var) -> Var {
        self.unary_ew(x, Op::Exp(x), f64::exp)
    }

    /// Element-wise natural logarithm.
    pub fn ln(&mut self, x: Var) -> Var {
        self.unary_ew(x, Op::Ln(x), f64::ln)
    }

    /// Element-wise `tanh`.
    pub fn tanh(&mut self, x: Var) -> Var {
        self.unary_ew(x, Op::Tanh(x), f64::tanh)
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        self.unary_ew(x, Op::Sigmoid(x), sigmoid)
    }

    /// Element-wise rectified linear unit.
    pub fn relu(&mut self, x: Var) -> Var {
        self.unary_ew(x, Op::Relu(x), |a| a.max(0.0))
    }

    /// Element-wise softplus `ln(1 + eˣ)`, the variance-stabilising
    /// activation of Eq. 7, computed in a numerically stable form.
    pub fn softplus(&mut self, x: Var) -> Var {
        self.unary_ew(x, Op::Softplus(x), softplus)
    }

    /// Fused gate pre-activation `x · w + h · u + b` — one node for the
    /// recurrent double projection that previously took four (`matmul`,
    /// `matmul`, `add`, `add_row`). Element order matches the unfused
    /// chain: `(xW + hU) + b`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent shapes.
    pub fn affine2(&mut self, x: Var, w: Var, h: Var, u: Var, b: Var) -> Var {
        let i = self.reserve();
        let (head, tail) = self.values.split_at_mut(i);
        let out = &mut tail[0];
        head[x.ix()].matmul_add_into(&head[w.ix()], None, out);
        out.add_matmul(&head[h.ix()], &head[u.ix()]);
        let bias = &head[b.ix()];
        assert_eq!(bias.rows(), 1, "affine2 expects a 1×m bias row");
        assert_eq!(bias.cols(), out.cols(), "affine2 bias width mismatch");
        let cols = out.cols();
        for r in 0..out.rows() {
            let row = &mut out.as_mut_slice()[r * cols..(r + 1) * cols];
            for (o, bv) in row.iter_mut().zip(bias.as_slice()) {
                *o += bv;
            }
        }
        self.commit(Op::Affine2 { x, w, h, u, b })
    }

    /// Fused convex state blend `(1 − gate) ⊙ a + gate ⊙ b` — one node for
    /// the GRU output mix that previously took five elementwise ops.
    ///
    /// # Panics
    ///
    /// Panics if the three shapes differ.
    pub fn blend(&mut self, gate: Var, a: Var, b: Var) -> Var {
        let i = self.reserve();
        let (rows, cols) = self.values[gate.ix()].shape();
        assert_eq!(
            (rows, cols),
            self.values[a.ix()].shape(),
            "blend shape mismatch"
        );
        assert_eq!(
            (rows, cols),
            self.values[b.ix()].shape(),
            "blend shape mismatch"
        );
        let (head, out) = Self::out_slot(&mut self.values, i, rows, cols);
        let gv = head[gate.ix()].as_slice();
        let av = head[a.ix()].as_slice();
        let bv = head[b.ix()].as_slice();
        for (j, o) in out.as_mut_slice().iter_mut().enumerate() {
            *o = (1.0 - gv[j]) * av[j] + gv[j] * bv[j];
        }
        self.commit(Op::Blend { gate, a, b })
    }

    /// Fused Gaussian negative log-likelihood
    /// `mean(ln σ + ((y−μ)/σ)²/2) + ln(2π)/2` as one node: a single pass
    /// instead of the eight-op elementwise chain it replaces, with
    /// closed-form gradients to `mu` and `sigma` on the backward sweep.
    /// `target` is treated as a constant (no gradient).
    ///
    /// # Panics
    ///
    /// Panics if the three shapes differ.
    pub fn gaussian_nll(&mut self, mu: Var, sigma: Var, target: Var) -> Var {
        let i = self.reserve();
        let shape = self.values[mu.ix()].shape();
        assert_eq!(
            shape,
            self.values[sigma.ix()].shape(),
            "gaussian_nll shape mismatch"
        );
        assert_eq!(
            shape,
            self.values[target.ix()].shape(),
            "gaussian_nll shape mismatch"
        );
        let (head, out) = Self::out_slot(&mut self.values, i, 1, 1);
        let mv = head[mu.ix()].as_slice();
        let sv = head[sigma.ix()].as_slice();
        let tv = head[target.ix()].as_slice();
        let mut acc = 0.0;
        for ((m, s), y) in mv.iter().zip(sv).zip(tv) {
            let z = (y - m) / s;
            acc += s.ln() + 0.5 * z * z;
        }
        let n = mv.len().max(1) as f64;
        out.as_mut_slice()[0] = acc / n + 0.5 * (2.0 * std::f64::consts::PI).ln();
        self.commit(Op::GaussianNll { mu, sigma, target })
    }

    /// [`Graph::gaussian_nll`] with the variance head folded in:
    /// `σ = softplus(pre) + floor` (Eq. 7 + Eq. 8 as one node). Saves the
    /// intermediate softplus/shift tensors and their backward passes on
    /// the per-batch training path.
    ///
    /// # Panics
    ///
    /// Panics if the three shapes differ.
    pub fn gaussian_nll_softplus(&mut self, mu: Var, pre: Var, target: Var, floor: f64) -> Var {
        let i = self.reserve();
        let shape = self.values[mu.ix()].shape();
        assert_eq!(
            shape,
            self.values[pre.ix()].shape(),
            "gaussian_nll_softplus shape mismatch"
        );
        assert_eq!(
            shape,
            self.values[target.ix()].shape(),
            "gaussian_nll_softplus shape mismatch"
        );
        let (head, out) = Self::out_slot(&mut self.values, i, 1, 1);
        let mv = head[mu.ix()].as_slice();
        let pv = head[pre.ix()].as_slice();
        let tv = head[target.ix()].as_slice();
        let mut acc = 0.0;
        for ((m, p), y) in mv.iter().zip(pv).zip(tv) {
            let s = softplus(*p) + floor;
            let z = (y - m) / s;
            acc += s.ln() + 0.5 * z * z;
        }
        let n = mv.len().max(1) as f64;
        out.as_mut_slice()[0] = acc / n + 0.5 * (2.0 * std::f64::consts::PI).ln();
        self.commit(Op::GaussianNllSoftplus {
            mu,
            pre,
            target,
            floor,
        })
    }

    /// Sum of all elements, as a `1 × 1` scalar.
    pub fn sum_all(&mut self, x: Var) -> Var {
        let i = self.reserve();
        let (head, out) = Self::out_slot(&mut self.values, i, 1, 1);
        out.as_mut_slice()[0] = head[x.ix()].sum();
        self.commit(Op::SumAll(x))
    }

    /// Mean of all elements, as a `1 × 1` scalar.
    pub fn mean_all(&mut self, x: Var) -> Var {
        let i = self.reserve();
        let (head, out) = Self::out_slot(&mut self.values, i, 1, 1);
        out.as_mut_slice()[0] = head[x.ix()].mean();
        self.commit(Op::MeanAll(x))
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, x: Var) -> Var {
        let i = self.reserve();
        let (head, tail) = self.values.split_at_mut(i);
        head[x.ix()].transpose_into(&mut tail[0]);
        self.commit(Op::Transpose(x))
    }

    /// Row-wise softmax (used by every attention block).
    pub fn softmax_rows(&mut self, x: Var) -> Var {
        let i = self.reserve();
        let (rows, cols) = self.values[x.ix()].shape();
        let (head, out) = Self::out_slot(&mut self.values, i, rows, cols);
        out.as_mut_slice().copy_from_slice(head[x.ix()].as_slice());
        for r in 0..rows {
            let row = &mut out.as_mut_slice()[r * cols..(r + 1) * cols];
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        self.commit(Op::SoftmaxRows(x))
    }

    /// Concatenates variables left-to-right (matching row counts).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols requires at least one part");
        let i = self.reserve();
        let aux_start = self.aux_len as u32;
        for p in parts {
            self.aux_push(p.0);
        }
        let rows = self.values[parts[0].ix()].rows();
        let total: usize = parts.iter().map(|p| self.values[p.ix()].cols()).sum();
        let (head, out) = Self::out_slot(&mut self.values, i, rows, total);
        let os = out.as_mut_slice();
        let mut offset = 0;
        for p in parts {
            let t = &head[p.ix()];
            assert_eq!(t.rows(), rows, "concat_cols row count mismatch");
            let c = t.cols();
            let ts = t.as_slice();
            for r in 0..rows {
                os[r * total + offset..r * total + offset + c]
                    .copy_from_slice(&ts[r * c..(r + 1) * c]);
            }
            offset += c;
        }
        self.commit(Op::ConcatCols {
            aux_start,
            parts: parts.len() as u32,
        })
    }

    /// Gathers rows `indices` from an embedding `table` (a `vocab × dim`
    /// variable, usually a parameter), producing `len(indices) × dim`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn embedding(&mut self, table: Var, indices: &[usize]) -> Var {
        let i = self.reserve();
        let aux_start = self.aux_len as u32;
        for &idx in indices {
            self.aux_push(idx as u32);
        }
        let dim = self.values[table.ix()].cols();
        let (head, out) = Self::out_slot(&mut self.values, i, indices.len(), dim);
        let tv = &head[table.ix()];
        let os = out.as_mut_slice();
        for (r, &idx) in indices.iter().enumerate() {
            assert!(
                idx < tv.rows(),
                "embedding index {idx} out of range ({})",
                tv.rows()
            );
            os[r * dim..(r + 1) * dim].copy_from_slice(tv.row_slice(idx));
        }
        self.commit(Op::Embedding {
            table,
            aux_start,
            len: indices.len() as u32,
        })
    }

    /// Multiplies every row `r` of the `n × m` matrix `x` by the scalar
    /// `col[r]` taken from an `n × 1` column vector.
    ///
    /// # Panics
    ///
    /// Panics if `col` is not `n × 1` with matching `n`.
    pub fn scale_rows(&mut self, x: Var, col: Var) -> Var {
        let i = self.reserve();
        {
            let cv = &self.values[col.ix()];
            let xv = &self.values[x.ix()];
            assert_eq!(cv.cols(), 1, "scale_rows expects an n×1 column vector");
            assert_eq!(cv.rows(), xv.rows(), "scale_rows row mismatch");
        }
        let (rows, cols) = self.values[x.ix()].shape();
        let (head, out) = Self::out_slot(&mut self.values, i, rows, cols);
        let xs = head[x.ix()].as_slice();
        let cs = head[col.ix()].as_slice();
        let os = out.as_mut_slice();
        for r in 0..rows {
            let k = cs[r];
            for c in 0..cols {
                os[r * cols + c] = xs[r * cols + c] * k;
            }
        }
        self.commit(Op::ScaleRows(x, col))
    }

    /// Extracts columns `[start, start + len)` of `x`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    pub fn slice_cols(&mut self, x: Var, start: usize, len: usize) -> Var {
        let i = self.reserve();
        let (rows, cols) = self.values[x.ix()].shape();
        assert!(start + len <= cols, "slice_cols out of range");
        let (head, out) = Self::out_slot(&mut self.values, i, rows, len);
        let xs = head[x.ix()].as_slice();
        let os = out.as_mut_slice();
        for r in 0..rows {
            os[r * len..(r + 1) * len]
                .copy_from_slice(&xs[r * cols + start..r * cols + start + len]);
        }
        self.commit(Op::SliceCols {
            x,
            start: start as u32,
        })
    }

    /// A whole unrolled GRU recurrence as **one** tape entry: forward and
    /// backward run as tight loops over preallocated scratch instead of
    /// `8 × steps` tape nodes (the recurrent hot path was tape-overhead
    /// bound, not flop-bound).
    ///
    /// `xs` packs the step inputs row-major by time: rows
    /// `[t·batch, (t+1)·batch)` are the batch's inputs at step `t`, so
    /// `xs` is `(steps·batch) × in_dim`. The initial state is zero (the
    /// same contract as [`crate::GruCell::initial_state`]) and the node's
    /// value is the final hidden state (`batch × hidden`).
    ///
    /// Float order is bit-identical to the equivalent
    /// [`crate::GruCell::step_bound`] chain: per step the gate
    /// pre-activations are `xW` then `+hU` then `+b` with the same blocked
    /// kernels, and the backward pass accumulates per-step weight
    /// gradients through per-step scratch in the same reverse-time order
    /// the node-per-step tape used.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is not a constant leaf (the scan produces no input
    /// gradient), `steps` is zero, or the row count is not a multiple of
    /// `steps`.
    pub fn gru_scan(&mut self, xs: Var, steps: usize, nodes: &GruCellNodes) -> Var {
        assert!(steps > 0, "gru_scan needs at least one step");
        assert!(
            matches!(self.ops[xs.ix()], Op::Const),
            "gru_scan input must be a constant leaf (it receives no gradient)"
        );
        let (xrows, in_dim) = self.values[xs.ix()].shape();
        assert_eq!(xrows % steps, 0, "gru_scan rows not divisible by steps");
        let b = xrows / steps;
        let hidden = self.values[nodes.uz.ix()].cols();
        let i = self.reserve();
        let s_idx = self.scan_count;
        if s_idx == self.scans.len() {
            self.scans.push(GruScanState::empty());
        }
        self.scan_count += 1;
        let bh = b * hidden;
        {
            let st = &mut self.scans[s_idx];
            st.xs = xs;
            st.steps = steps as u32;
            st.batch = b as u32;
            st.in_dim = in_dim as u32;
            st.hidden = hidden as u32;
            st.wz = nodes.wz;
            st.uz = nodes.uz;
            st.bz = nodes.bz;
            st.wr = nodes.wr;
            st.ur = nodes.ur;
            st.br = nodes.br;
            st.wh = nodes.wh;
            st.uh = nodes.uh;
            st.bh = nodes.bh;
            st.hs.resize_reuse((steps + 1) * b, hidden);
            st.zs.resize_reuse(steps * b, hidden);
            st.rs.resize_reuse(steps * b, hidden);
            st.cands.resize_reuse(steps * b, hidden);
            st.rh.resize_reuse(b, hidden);
            let values = &self.values;
            let xsv = values[xs.ix()].as_slice();
            let wzv = values[nodes.wz.ix()].as_slice();
            let uzv = values[nodes.uz.ix()].as_slice();
            let bzv = values[nodes.bz.ix()].as_slice();
            let wrv = values[nodes.wr.ix()].as_slice();
            let urv = values[nodes.ur.ix()].as_slice();
            let brv = values[nodes.br.ix()].as_slice();
            let whv = values[nodes.wh.ix()].as_slice();
            let uhv = values[nodes.uh.ix()].as_slice();
            let bhv = values[nodes.bh.ix()].as_slice();
            let hs = st.hs.as_mut_slice();
            let zs = st.zs.as_mut_slice();
            let rs = st.rs.as_mut_slice();
            let cs = st.cands.as_mut_slice();
            let rhb = st.rh.as_mut_slice();
            hs[..bh].iter_mut().for_each(|v| *v = 0.0);
            for t in 0..steps {
                let x_t = &xsv[t * b * in_dim..(t + 1) * b * in_dim];
                let (h_lo, h_hi) = hs.split_at_mut((t + 1) * bh);
                let hp = &h_lo[t * bh..];
                let hn = &mut h_hi[..bh];
                // update gate: z = σ(xW_z + hU_z + b_z)
                let zb = &mut zs[t * bh..(t + 1) * bh];
                matmul_slices(x_t, b, in_dim, wzv, hidden, zb, false);
                matmul_slices(hp, b, hidden, uzv, hidden, zb, true);
                add_bias_rows(zb, bzv, b, hidden);
                zb.iter_mut().for_each(|v| *v = sigmoid(*v));
                // reset gate: r = σ(xW_r + hU_r + b_r)
                let rb = &mut rs[t * bh..(t + 1) * bh];
                matmul_slices(x_t, b, in_dim, wrv, hidden, rb, false);
                matmul_slices(hp, b, hidden, urv, hidden, rb, true);
                add_bias_rows(rb, brv, b, hidden);
                rb.iter_mut().for_each(|v| *v = sigmoid(*v));
                // candidate: c = tanh(xW_h + (r ⊙ h)U_h + b_h)
                for j in 0..bh {
                    rhb[j] = rb[j] * hp[j];
                }
                let cb = &mut cs[t * bh..(t + 1) * bh];
                matmul_slices(x_t, b, in_dim, whv, hidden, cb, false);
                matmul_slices(rhb, b, hidden, uhv, hidden, cb, true);
                add_bias_rows(cb, bhv, b, hidden);
                cb.iter_mut().for_each(|v| *v = f64::tanh(*v));
                // blend: h' = (1 − z) ⊙ h + z ⊙ c
                for j in 0..bh {
                    hn[j] = (1.0 - zb[j]) * hp[j] + zb[j] * cb[j];
                }
            }
        }
        {
            let st = &self.scans[s_idx];
            let out = &mut self.values[i];
            if out.is_shared() {
                *out = Tensor::zeros(b, hidden);
            } else {
                out.resize_reuse(b, hidden);
            }
            out.as_mut_slice()
                .copy_from_slice(&st.hs.as_slice()[steps * bh..]);
        }
        self.commit(Op::GruScan {
            state: s_idx as u32,
        })
    }

    /// Runs backpropagation from `output`, accumulating gradients into every
    /// [`Param`] reachable from it, then releases parameter value shares
    /// (so the optimizer's in-place update does not copy). `output` is
    /// typically a scalar loss; for non-scalars the seed gradient is
    /// all-ones.
    // gfs-lint: hot(tape)
    pub fn backward(&mut self, output: Var) {
        let n = self.ops.len();
        if self.grads.len() < n {
            self.grads.resize_with(n, || Tensor::zeros(0, 0));
        }
        self.grad_seen.clear();
        self.grad_seen.resize(n, false);
        {
            let (orows, ocols) = self.values[output.ix()].shape();
            let seed = &mut self.grads[output.ix()];
            seed.resize_reuse(orows, ocols);
            seed.as_mut_slice().iter_mut().for_each(|v| *v = 1.0);
            self.grad_seen[output.ix()] = true;
        }

        for i in (0..n).rev() {
            if !self.grad_seen[i] {
                continue;
            }
            let (glo, ghi) = self.grads.split_at_mut(i);
            let gy: &Tensor = &ghi[0];
            let gys = gy.as_slice();
            let seen = &mut self.grad_seen;
            let values = &self.values;
            match &self.ops[i] {
                Op::Const => {}
                Op::Param(p) => {
                    p.accumulate_grad(gy);
                }
                Op::Add(a, b) => {
                    let (rows, cols) = gy.shape();
                    acc_map(glo, seen, a.ix(), rows, cols, |j| gys[j]);
                    acc_map(glo, seen, b.ix(), rows, cols, |j| gys[j]);
                }
                Op::Sub(a, b) => {
                    let (rows, cols) = gy.shape();
                    acc_map(glo, seen, a.ix(), rows, cols, |j| gys[j]);
                    acc_map(glo, seen, b.ix(), rows, cols, |j| -gys[j]);
                }
                Op::Mul(a, b) => {
                    let (rows, cols) = gy.shape();
                    let av = values[a.ix()].as_slice();
                    let bv = values[b.ix()].as_slice();
                    acc_map(glo, seen, a.ix(), rows, cols, |j| gys[j] * bv[j]);
                    acc_map(glo, seen, b.ix(), rows, cols, |j| gys[j] * av[j]);
                }
                Op::Div(a, b) => {
                    let (rows, cols) = gy.shape();
                    let av = values[a.ix()].as_slice();
                    let bv = values[b.ix()].as_slice();
                    acc_map(glo, seen, a.ix(), rows, cols, |j| gys[j] / bv[j]);
                    acc_map(glo, seen, b.ix(), rows, cols, |j| {
                        let t = gys[j] * av[j];
                        -t / (bv[j] * bv[j])
                    });
                }
                Op::MatMul(a, b) => {
                    acc_matmul_transb(
                        glo,
                        seen,
                        a.ix(),
                        gy,
                        &values[b.ix()],
                        &mut self.scratch_t,
                        &mut self.scratch,
                    );
                    acc_matmul_transa(glo, seen, b.ix(), &values[a.ix()], gy, &mut self.scratch);
                }
                Op::Affine(x, w, b) => {
                    acc_matmul_transb(
                        glo,
                        seen,
                        x.ix(),
                        gy,
                        &values[w.ix()],
                        &mut self.scratch_t,
                        &mut self.scratch,
                    );
                    acc_matmul_transa(glo, seen, w.ix(), &values[x.ix()], gy, &mut self.scratch);
                    acc_colsum(glo, seen, b.ix(), gy, &mut self.scratch);
                }
                Op::AddRow(x, row) => {
                    let (rows, cols) = gy.shape();
                    acc_map(glo, seen, x.ix(), rows, cols, |j| gys[j]);
                    acc_colsum(glo, seen, row.ix(), gy, &mut self.scratch);
                }
                Op::Scale(x, k) => {
                    let (rows, cols) = gy.shape();
                    let k = *k;
                    acc_map(glo, seen, x.ix(), rows, cols, |j| gys[j] * k);
                }
                Op::AddConst(x) => {
                    let (rows, cols) = gy.shape();
                    acc_map(glo, seen, x.ix(), rows, cols, |j| gys[j]);
                }
                Op::Exp(x) => {
                    let (rows, cols) = gy.shape();
                    let ys = values[i].as_slice();
                    acc_map(glo, seen, x.ix(), rows, cols, |j| gys[j] * ys[j]);
                }
                Op::Ln(x) => {
                    let (rows, cols) = gy.shape();
                    let xs = values[x.ix()].as_slice();
                    acc_map(glo, seen, x.ix(), rows, cols, |j| gys[j] / xs[j]);
                }
                Op::Tanh(x) => {
                    let (rows, cols) = gy.shape();
                    let ys = values[i].as_slice();
                    acc_map(glo, seen, x.ix(), rows, cols, |j| {
                        gys[j] * (1.0 - ys[j] * ys[j])
                    });
                }
                Op::Sigmoid(x) => {
                    let (rows, cols) = gy.shape();
                    let ys = values[i].as_slice();
                    acc_map(glo, seen, x.ix(), rows, cols, |j| {
                        gys[j] * ys[j] * (1.0 - ys[j])
                    });
                }
                Op::Relu(x) => {
                    let (rows, cols) = gy.shape();
                    let xs = values[x.ix()].as_slice();
                    acc_map(glo, seen, x.ix(), rows, cols, |j| {
                        if xs[j] > 0.0 {
                            gys[j]
                        } else {
                            0.0
                        }
                    });
                }
                Op::Softplus(x) => {
                    let (rows, cols) = gy.shape();
                    let xs = values[x.ix()].as_slice();
                    acc_map(glo, seen, x.ix(), rows, cols, |j| gys[j] * sigmoid(xs[j]));
                }
                Op::SumAll(x) => {
                    let s = gy.item();
                    let (rows, cols) = values[x.ix()].shape();
                    acc_map(glo, seen, x.ix(), rows, cols, |_| s);
                }
                Op::MeanAll(x) => {
                    let (rows, cols) = values[x.ix()].shape();
                    let s = gy.item() / (rows * cols) as f64;
                    acc_map(glo, seen, x.ix(), rows, cols, |_| s);
                }
                Op::Transpose(x) => {
                    let (rows, cols) = values[x.ix()].shape();
                    gy.transpose_into(&mut self.scratch);
                    let ss = self.scratch.as_slice();
                    acc_map(glo, seen, x.ix(), rows, cols, |j| ss[j]);
                }
                Op::SoftmaxRows(x) => {
                    let (rows, cols) = gy.shape();
                    let ys = values[i].as_slice();
                    let first = prep(glo, seen, x.ix(), rows, cols);
                    let s = glo[x.ix()].as_mut_slice();
                    for r in 0..rows {
                        let base = r * cols;
                        let mut dot = 0.0;
                        for c in 0..cols {
                            dot += gys[base + c] * ys[base + c];
                        }
                        for c in 0..cols {
                            let v = (gys[base + c] - dot) * ys[base + c];
                            if first {
                                s[base + c] = v;
                            } else {
                                s[base + c] += v;
                            }
                        }
                    }
                }
                Op::ConcatCols { aux_start, parts } => {
                    let total = gy.cols();
                    let astart = *aux_start as usize;
                    let pcount = *parts as usize;
                    let mut offset = 0;
                    for pi in 0..pcount {
                        let p = self.aux[astart + pi] as usize;
                        let (rows, cols) = values[p].shape();
                        acc_map(glo, seen, p, rows, cols, |j| {
                            let r = j / cols;
                            let c = j % cols;
                            gys[r * total + offset + c]
                        });
                        offset += cols;
                    }
                }
                Op::Embedding {
                    table,
                    aux_start,
                    len,
                } => {
                    let t = table.ix();
                    let (vocab, dim) = values[t].shape();
                    let idxs = &self.aux[*aux_start as usize..(*aux_start + *len) as usize];
                    let first = prep(glo, seen, t, vocab, dim);
                    if first {
                        let s = glo[t].as_mut_slice();
                        s.iter_mut().for_each(|v| *v = 0.0);
                        scatter_rows(s, dim, idxs, gys);
                    } else {
                        self.scratch.resize_reuse(vocab, dim);
                        let s = self.scratch.as_mut_slice();
                        s.iter_mut().for_each(|v| *v = 0.0);
                        scatter_rows(s, dim, idxs, gys);
                        glo[t].add_scaled(&self.scratch, 1.0);
                    }
                }
                Op::Affine2 { x, w, h, u, b } => {
                    acc_matmul_transb(
                        glo,
                        seen,
                        x.ix(),
                        gy,
                        &values[w.ix()],
                        &mut self.scratch_t,
                        &mut self.scratch,
                    );
                    acc_matmul_transa(glo, seen, w.ix(), &values[x.ix()], gy, &mut self.scratch);
                    acc_matmul_transb(
                        glo,
                        seen,
                        h.ix(),
                        gy,
                        &values[u.ix()],
                        &mut self.scratch_t,
                        &mut self.scratch,
                    );
                    acc_matmul_transa(glo, seen, u.ix(), &values[h.ix()], gy, &mut self.scratch);
                    acc_colsum(glo, seen, b.ix(), gy, &mut self.scratch);
                }
                Op::Blend { gate, a, b } => {
                    let (rows, cols) = gy.shape();
                    let gv = values[gate.ix()].as_slice();
                    let av = values[a.ix()].as_slice();
                    let bv = values[b.ix()].as_slice();
                    acc_map(glo, seen, gate.ix(), rows, cols, |j| {
                        gys[j] * (bv[j] - av[j])
                    });
                    acc_map(glo, seen, a.ix(), rows, cols, |j| gys[j] * (1.0 - gv[j]));
                    acc_map(glo, seen, b.ix(), rows, cols, |j| gys[j] * gv[j]);
                }
                Op::GaussianNll { mu, sigma, target } => {
                    let mv = values[mu.ix()].as_slice();
                    let sv = values[sigma.ix()].as_slice();
                    let tv = values[target.ix()].as_slice();
                    let scale = gy.item() / mv.len().max(1) as f64;
                    let (rows, cols) = values[mu.ix()].shape();
                    acc_map(glo, seen, mu.ix(), rows, cols, |j| {
                        let z = (tv[j] - mv[j]) / sv[j];
                        scale * (-z / sv[j])
                    });
                    acc_map(glo, seen, sigma.ix(), rows, cols, |j| {
                        let z = (tv[j] - mv[j]) / sv[j];
                        scale * (1.0 - z * z) / sv[j]
                    });
                }
                Op::GaussianNllSoftplus {
                    mu,
                    pre,
                    target,
                    floor,
                } => {
                    let floor = *floor;
                    let mv = values[mu.ix()].as_slice();
                    let pv = values[pre.ix()].as_slice();
                    let tv = values[target.ix()].as_slice();
                    let scale = gy.item() / mv.len().max(1) as f64;
                    let (rows, cols) = values[mu.ix()].shape();
                    acc_map(glo, seen, mu.ix(), rows, cols, |j| {
                        let s = softplus(pv[j]) + floor;
                        let z = (tv[j] - mv[j]) / s;
                        scale * (-z / s)
                    });
                    // ∂L/∂σ · ∂σ/∂pre, with ∂softplus = sigmoid
                    acc_map(glo, seen, pre.ix(), rows, cols, |j| {
                        let s = softplus(pv[j]) + floor;
                        let z = (tv[j] - mv[j]) / s;
                        scale * ((1.0 - z * z) / s) * sigmoid(pv[j])
                    });
                }
                Op::ScaleRows(x, col) => {
                    let (rows, cols) = gy.shape();
                    let xv = values[x.ix()].as_slice();
                    let cv = values[col.ix()].as_slice();
                    acc_map(glo, seen, x.ix(), rows, cols, |j| gys[j] * cv[j / cols]);
                    let firstc = prep(glo, seen, col.ix(), rows, 1);
                    let s = glo[col.ix()].as_mut_slice();
                    for r in 0..rows {
                        let mut dot = 0.0;
                        for c in 0..cols {
                            dot += gys[r * cols + c] * xv[r * cols + c];
                        }
                        if firstc {
                            s[r] = dot;
                        } else {
                            s[r] += dot;
                        }
                    }
                }
                Op::SliceCols { x, start } => {
                    let xi = x.ix();
                    let (rows, cols) = values[xi].shape();
                    let start = *start as usize;
                    let gcols = gy.cols();
                    let first = prep(glo, seen, xi, rows, cols);
                    if first {
                        let s = glo[xi].as_mut_slice();
                        s.iter_mut().for_each(|v| *v = 0.0);
                        expand_cols(s, cols, start, gys, gcols, rows);
                    } else {
                        self.scratch.resize_reuse(rows, cols);
                        let s = self.scratch.as_mut_slice();
                        s.iter_mut().for_each(|v| *v = 0.0);
                        expand_cols(s, cols, start, gys, gcols, rows);
                        glo[xi].add_scaled(&self.scratch, 1.0);
                    }
                }
                Op::GruScan { state } => {
                    gru_scan_backward(&mut self.scans[*state as usize], values, glo, seen, gy);
                }
            }
        }
        self.release_params();
    }
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new()
    }
}

/// Prepares grad slot `idx` for a contribution: on the first visit this
/// sweep the slot is reshaped (contents stale — the caller must assign, not
/// accumulate) and `true` is returned; later visits return `false`.
///
/// First visits **assign** and revisits **add** to reproduce the float
/// behaviour of the fresh-tensor graph exactly (a zero-init slot would turn
/// `set(-0.0)` into `0.0 + -0.0 = 0.0`, flipping a sign bit).
// gfs-lint: hot(tape)
fn prep(glo: &mut [Tensor], seen: &mut [bool], idx: usize, rows: usize, cols: usize) -> bool {
    let first = !seen[idx];
    if first {
        seen[idx] = true;
        glo[idx].resize_reuse(rows, cols);
    } else {
        debug_assert_eq!(glo[idx].shape(), (rows, cols), "gradient shape drift");
    }
    first
}

/// Elementwise gradient contribution `slot[j] (+)= f(j)`.
// gfs-lint: hot(tape)
fn acc_map(
    glo: &mut [Tensor],
    seen: &mut [bool],
    idx: usize,
    rows: usize,
    cols: usize,
    f: impl Fn(usize) -> f64,
) {
    let first = prep(glo, seen, idx, rows, cols);
    let s = glo[idx].as_mut_slice();
    if first {
        for (j, o) in s.iter_mut().enumerate() {
            *o = f(j);
        }
    } else {
        for (j, o) in s.iter_mut().enumerate() {
            *o += f(j);
        }
    }
}

/// Gradient contribution `slot (+)= gy · bmatᵀ` (`∂x` of a matmul/affine).
/// The transpose goes through `tscratch` once; revisits compute into
/// `pscratch` and add, matching the fresh-tensor-then-`add_scaled` float
/// order of the node-allocated graph.
// gfs-lint: hot(tape)
fn acc_matmul_transb(
    glo: &mut [Tensor],
    seen: &mut [bool],
    idx: usize,
    gy: &Tensor,
    bmat: &Tensor,
    tscratch: &mut Tensor,
    pscratch: &mut Tensor,
) {
    let (brows, bcols) = bmat.shape();
    debug_assert_eq!(bcols, gy.cols(), "acc_matmul_transb inner dim");
    bmat.transpose_into(tscratch);
    let m = gy.rows();
    let first = prep(glo, seen, idx, m, brows);
    if first {
        matmul_slices(
            gy.as_slice(),
            m,
            bcols,
            tscratch.as_slice(),
            brows,
            glo[idx].as_mut_slice(),
            false,
        );
    } else {
        pscratch.resize_reuse(m, brows);
        matmul_slices(
            gy.as_slice(),
            m,
            bcols,
            tscratch.as_slice(),
            brows,
            pscratch.as_mut_slice(),
            false,
        );
        glo[idx].add_scaled(pscratch, 1.0);
    }
}

/// Gradient contribution `slot (+)= amatᵀ · gy` (`∂w` of a matmul/affine).
// gfs-lint: hot(tape)
fn acc_matmul_transa(
    glo: &mut [Tensor],
    seen: &mut [bool],
    idx: usize,
    amat: &Tensor,
    gy: &Tensor,
    pscratch: &mut Tensor,
) {
    let (m, k) = amat.shape();
    let ncols = gy.cols();
    debug_assert_eq!(gy.rows(), m, "acc_matmul_transa inner dim");
    let first = prep(glo, seen, idx, k, ncols);
    if first {
        matmul_transa_slices(
            amat.as_slice(),
            m,
            k,
            gy.as_slice(),
            ncols,
            glo[idx].as_mut_slice(),
            false,
        );
    } else {
        pscratch.resize_reuse(k, ncols);
        matmul_transa_slices(
            amat.as_slice(),
            m,
            k,
            gy.as_slice(),
            ncols,
            pscratch.as_mut_slice(),
            false,
        );
        glo[idx].add_scaled(pscratch, 1.0);
    }
}

/// Gradient contribution `slot (+)= column sums of gy` (`∂b` of an affine).
// gfs-lint: hot(tape)
fn acc_colsum(
    glo: &mut [Tensor],
    seen: &mut [bool],
    idx: usize,
    gy: &Tensor,
    pscratch: &mut Tensor,
) {
    let (rows, cols) = gy.shape();
    let gys = gy.as_slice();
    let first = prep(glo, seen, idx, 1, cols);
    if first {
        colsum_into(gys, rows, cols, glo[idx].as_mut_slice());
    } else {
        pscratch.resize_reuse(1, cols);
        colsum_into(gys, rows, cols, pscratch.as_mut_slice());
        glo[idx].add_scaled(pscratch, 1.0);
    }
}

/// `out[c] = Σ_r src[r, c]`, rows ascending (the bias-gradient reduction).
// gfs-lint: hot(tape)
fn colsum_into(src: &[f64], rows: usize, cols: usize, out: &mut [f64]) {
    out.iter_mut().for_each(|v| *v = 0.0);
    for r in 0..rows {
        for c in 0..cols {
            out[c] += src[r * cols + c];
        }
    }
}

/// Scatter-add `gy` rows into table rows `idxs` (embedding backward).
// gfs-lint: hot(tape)
fn scatter_rows(out: &mut [f64], dim: usize, idxs: &[u32], gys: &[f64]) {
    for (r, &idx) in idxs.iter().enumerate() {
        let trow = &mut out[idx as usize * dim..(idx as usize + 1) * dim];
        let grow = &gys[r * dim..(r + 1) * dim];
        for (o, g) in trow.iter_mut().zip(grow) {
            *o += g;
        }
    }
}

/// Write `gy` (`rows × gcols`) into columns `[start, start+gcols)` of a
/// zeroed `rows × cols` buffer (slice_cols backward).
// gfs-lint: hot(tape)
fn expand_cols(out: &mut [f64], cols: usize, start: usize, gys: &[f64], gcols: usize, rows: usize) {
    for r in 0..rows {
        out[r * cols + start..r * cols + start + gcols]
            .copy_from_slice(&gys[r * gcols..(r + 1) * gcols]);
    }
}

/// `out[r·cols..] += bias` for every row (the affine2 bias broadcast).
// gfs-lint: hot(tape)
fn add_bias_rows(out: &mut [f64], bias: &[f64], rows: usize, cols: usize) {
    for r in 0..rows {
        let row = &mut out[r * cols..(r + 1) * cols];
        for (o, bv) in row.iter_mut().zip(bias) {
            *o += bv;
        }
    }
}

/// Backward pass of one [`Graph::gru_scan`] node: reverse-time BPTT in
/// tight loops over the state's preallocated scratch. Per-step weight and
/// bias gradients go through per-step scratch tensors and are then added to
/// the tape grad slots, reproducing the exact accumulation order (and so
/// the exact float results) of the node-per-step tape; the hidden-state
/// gradient accumulates its four per-step contributions in the node-reverse
/// order of the unfused chain (blend, candidate-via-reset, reset gate,
/// update gate).
// gfs-lint: hot(tape)
fn gru_scan_backward(
    st: &mut GruScanState,
    values: &[Tensor],
    glo: &mut [Tensor],
    seen: &mut [bool],
    gy: &Tensor,
) {
    let steps = st.steps as usize;
    let b = st.batch as usize;
    let in_dim = st.in_dim as usize;
    let hidden = st.hidden as usize;
    let bh = b * hidden;
    st.gh.copy_from(gy);
    st.ghp.resize_reuse(b, hidden);
    st.gz.resize_reuse(b, hidden);
    st.gr.resize_reuse(b, hidden);
    st.gcand.resize_reuse(b, hidden);
    st.gtmp.resize_reuse(b, hidden);
    st.rh.resize_reuse(b, hidden);
    st.step_gw.resize_reuse(in_dim, hidden);
    st.step_gu.resize_reuse(hidden, hidden);
    st.step_gb.resize_reuse(1, hidden);
    values[st.uz.ix()].transpose_into(&mut st.uzt);
    values[st.ur.ix()].transpose_into(&mut st.urt);
    values[st.uh.ix()].transpose_into(&mut st.uht);
    let xsv = values[st.xs.ix()].as_slice();
    for t in (0..steps).rev() {
        let x_t = &xsv[t * b * in_dim..(t + 1) * b * in_dim];
        let hp = &st.hs.as_slice()[t * bh..(t + 1) * bh];
        let zb = &st.zs.as_slice()[t * bh..(t + 1) * bh];
        let rb = &st.rs.as_slice()[t * bh..(t + 1) * bh];
        let cb = &st.cands.as_slice()[t * bh..(t + 1) * bh];
        let ghs = st.gh.as_slice();
        let ghps = st.ghp.as_mut_slice();
        let gzs = st.gz.as_mut_slice();
        let gcs = st.gcand.as_mut_slice();
        let grs = st.gr.as_mut_slice();
        // blend: ∂z = gh ⊙ (c − h), ∂h += gh ⊙ (1 − z)  [h contribution #1],
        // ∂c = gh ⊙ z, then tanh: ∂c_pre = ∂c ⊙ (1 − c²)
        for j in 0..bh {
            let g0 = ghs[j];
            gzs[j] = g0 * (cb[j] - hp[j]);
            ghps[j] = g0 * (1.0 - zb[j]);
            gcs[j] = g0 * zb[j];
        }
        for j in 0..bh {
            gcs[j] *= 1.0 - cb[j] * cb[j];
        }
        // candidate affine2 (x·W_h + (r⊙h)·U_h + b_h): ∂(r⊙h) = ∂c_pre · U_hᵀ
        matmul_slices(
            gcs,
            b,
            hidden,
            st.uht.as_slice(),
            hidden,
            st.gtmp.as_mut_slice(),
            false,
        );
        {
            let rhs = st.rh.as_mut_slice();
            for j in 0..bh {
                rhs[j] = rb[j] * hp[j];
            }
        }
        matmul_transa_slices(
            x_t,
            b,
            in_dim,
            gcs,
            hidden,
            st.step_gw.as_mut_slice(),
            false,
        );
        acc_from_scratch(glo, seen, st.wh, &st.step_gw);
        matmul_transa_slices(
            st.rh.as_slice(),
            b,
            hidden,
            gcs,
            hidden,
            st.step_gu.as_mut_slice(),
            false,
        );
        acc_from_scratch(glo, seen, st.uh, &st.step_gu);
        colsum_into(gcs, b, hidden, st.step_gb.as_mut_slice());
        acc_from_scratch(glo, seen, st.bh, &st.step_gb);
        // r⊙h product: ∂r = ∂(r⊙h) ⊙ h, ∂h += ∂(r⊙h) ⊙ r  [#2]
        {
            let gts = st.gtmp.as_slice();
            for j in 0..bh {
                grs[j] = gts[j] * hp[j];
                ghps[j] += gts[j] * rb[j];
            }
        }
        // reset sigmoid: ∂r_pre = ∂r ⊙ r ⊙ (1 − r)
        for j in 0..bh {
            grs[j] = grs[j] * rb[j] * (1.0 - rb[j]);
        }
        // reset affine2: ∂h += ∂r_pre · U_rᵀ  [#3], then W_r/U_r/b_r grads
        matmul_slices(
            grs,
            b,
            hidden,
            st.urt.as_slice(),
            hidden,
            st.gtmp.as_mut_slice(),
            false,
        );
        {
            let gts = st.gtmp.as_slice();
            for j in 0..bh {
                ghps[j] += gts[j];
            }
        }
        matmul_transa_slices(
            x_t,
            b,
            in_dim,
            grs,
            hidden,
            st.step_gw.as_mut_slice(),
            false,
        );
        acc_from_scratch(glo, seen, st.wr, &st.step_gw);
        matmul_transa_slices(hp, b, hidden, grs, hidden, st.step_gu.as_mut_slice(), false);
        acc_from_scratch(glo, seen, st.ur, &st.step_gu);
        colsum_into(grs, b, hidden, st.step_gb.as_mut_slice());
        acc_from_scratch(glo, seen, st.br, &st.step_gb);
        // update sigmoid: ∂z_pre = ∂z ⊙ z ⊙ (1 − z)
        for j in 0..bh {
            gzs[j] = gzs[j] * zb[j] * (1.0 - zb[j]);
        }
        // update affine2: ∂h += ∂z_pre · U_zᵀ  [#4], then W_z/U_z/b_z grads
        matmul_slices(
            gzs,
            b,
            hidden,
            st.uzt.as_slice(),
            hidden,
            st.gtmp.as_mut_slice(),
            false,
        );
        {
            let gts = st.gtmp.as_slice();
            for j in 0..bh {
                ghps[j] += gts[j];
            }
        }
        matmul_transa_slices(
            x_t,
            b,
            in_dim,
            gzs,
            hidden,
            st.step_gw.as_mut_slice(),
            false,
        );
        acc_from_scratch(glo, seen, st.wz, &st.step_gw);
        matmul_transa_slices(hp, b, hidden, gzs, hidden, st.step_gu.as_mut_slice(), false);
        acc_from_scratch(glo, seen, st.uz, &st.step_gu);
        colsum_into(gzs, b, hidden, st.step_gb.as_mut_slice());
        acc_from_scratch(glo, seen, st.bz, &st.step_gb);
        std::mem::swap(&mut st.gh, &mut st.ghp);
    }
}

/// Adds a finished per-step scratch gradient into tape grad slot `idx`
/// (assign on first visit, `add_scaled` after — the same order the
/// node-per-step tape accumulated per-step weight gradients).
// gfs-lint: hot(tape)
fn acc_from_scratch(glo: &mut [Tensor], seen: &mut [bool], idx: TapeIndex, scratch: &Tensor) {
    let i = idx.ix();
    if seen[i] {
        glo[i].add_scaled(scratch, 1.0);
    } else {
        seen[i] = true;
        glo[i].copy_from(scratch);
    }
}

/// Numerically stable logistic sigmoid.
#[must_use]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable softplus `ln(1 + eˣ)`.
#[must_use]
pub fn softplus(x: f64) -> f64 {
    x.max(0.0) + (-x.abs()).exp().ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(f: impl Fn(f64) -> f64, x: f64) -> f64 {
        let h = 1e-6;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn add_mul_gradients() {
        // y = (a + b) * a, dy/da = 2a + b, dy/db = a
        let a = Param::new(Tensor::scalar(3.0));
        let b = Param::new(Tensor::scalar(5.0));
        let mut g = Graph::new();
        let av = g.param(&a);
        let bv = g.param(&b);
        let s = g.add(av, bv);
        let y = g.mul(s, av);
        assert_eq!(g.value(y).item(), 24.0);
        g.backward(y);
        assert_eq!(a.grad().item(), 11.0);
        assert_eq!(b.grad().item(), 3.0);
    }

    #[test]
    fn div_gradient_matches_finite_difference() {
        let a0 = 2.0;
        let b0 = 7.0;
        let a = Param::new(Tensor::scalar(a0));
        let b = Param::new(Tensor::scalar(b0));
        let mut g = Graph::new();
        let av = g.param(&a);
        let bv = g.param(&b);
        let y = g.div(av, bv);
        g.backward(y);
        let da = finite_diff(|x| x / b0, a0);
        let db = finite_diff(|x| a0 / x, b0);
        assert!((a.grad().item() - da).abs() < 1e-6);
        assert!((b.grad().item() - db).abs() < 1e-6);
    }

    #[test]
    fn matmul_gradient() {
        // L = sum(A·B): dL/dA = 1·Bᵀ, dL/dB = Aᵀ·1
        let a = Param::new(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = Param::new(Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]));
        let mut g = Graph::new();
        let av = g.param(&a);
        let bv = g.param(&b);
        let p = g.matmul(av, bv);
        let loss = g.sum_all(p);
        g.backward(loss);
        assert_eq!(a.grad().row_slice(0), &[11.0, 15.0]);
        assert_eq!(a.grad().row_slice(1), &[11.0, 15.0]);
        assert_eq!(b.grad().row_slice(0), &[4.0, 4.0]);
        assert_eq!(b.grad().row_slice(1), &[6.0, 6.0]);
    }

    #[test]
    fn unary_gradients_match_finite_difference() {
        type UnaryCase = (fn(&mut Graph, Var) -> Var, fn(f64) -> f64, f64);
        let cases: Vec<UnaryCase> = vec![
            (Graph::exp, f64::exp, 0.7),
            (Graph::ln, f64::ln, 1.3),
            (Graph::tanh, f64::tanh, 0.4),
            (Graph::sigmoid, sigmoid, -0.6),
            (Graph::softplus, softplus, -1.1),
        ];
        for (op, f, x0) in cases {
            let p = Param::new(Tensor::scalar(x0));
            let mut g = Graph::new();
            let x = g.param(&p);
            let y = op(&mut g, x);
            g.backward(y);
            let expected = finite_diff(f, x0);
            assert!(
                (p.grad().item() - expected).abs() < 1e-5,
                "gradient mismatch at {x0}: {} vs {expected}",
                p.grad().item()
            );
        }
    }

    #[test]
    fn relu_gradient_gates() {
        let p = Param::new(Tensor::row(&[-1.0, 2.0]));
        let mut g = Graph::new();
        let x = g.param(&p);
        let y = g.relu(x);
        let s = g.sum_all(y);
        g.backward(s);
        assert_eq!(p.grad().as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one_and_grad_is_orthogonal() {
        let p = Param::new(Tensor::row(&[1.0, 2.0, 3.0]));
        let mut g = Graph::new();
        let x = g.param(&p);
        let y = g.softmax_rows(x);
        let row_sum: f64 = g.value(y).as_slice().iter().sum();
        assert!((row_sum - 1.0).abs() < 1e-12);
        // L = sum(softmax) == 1 identically, so the gradient must vanish.
        let s = g.sum_all(y);
        g.backward(s);
        for &v in p.grad().as_slice() {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn add_row_broadcast_gradient() {
        let x = Param::new(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = Param::new(Tensor::row(&[10.0, 20.0]));
        let mut g = Graph::new();
        let xv = g.param(&x);
        let bv = g.param(&b);
        let y = g.add_row(xv, bv);
        assert_eq!(g.value(y).row_slice(1), &[13.0, 24.0]);
        let s = g.sum_all(y);
        g.backward(s);
        assert_eq!(b.grad().as_slice(), &[2.0, 2.0], "bias grad sums over rows");
        assert_eq!(x.grad().as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn concat_cols_splits_gradient() {
        let a = Param::new(Tensor::row(&[1.0]));
        let b = Param::new(Tensor::row(&[2.0, 3.0]));
        let mut g = Graph::new();
        let av = g.param(&a);
        let bv = g.param(&b);
        let c = g.concat_cols(&[av, bv]);
        let w = g.constant(Tensor::row(&[1.0, 10.0, 100.0]));
        let prod = g.mul(c, w);
        let s = g.sum_all(prod);
        g.backward(s);
        assert_eq!(a.grad().as_slice(), &[1.0]);
        assert_eq!(b.grad().as_slice(), &[10.0, 100.0]);
    }

    #[test]
    fn embedding_scatters_gradient() {
        let table = Param::new(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
        let mut g = Graph::new();
        let t = g.param(&table);
        let e = g.embedding(t, &[2, 0, 2]);
        assert_eq!(g.value(e).row_slice(0), &[5.0, 6.0]);
        let s = g.sum_all(e);
        g.backward(s);
        // row 2 gathered twice, row 0 once, row 1 never
        assert_eq!(table.grad().row_slice(0), &[1.0, 1.0]);
        assert_eq!(table.grad().row_slice(1), &[0.0, 0.0]);
        assert_eq!(table.grad().row_slice(2), &[2.0, 2.0]);
    }

    #[test]
    fn mean_all_divides_gradient() {
        let p = Param::new(Tensor::row(&[2.0, 4.0, 6.0, 8.0]));
        let mut g = Graph::new();
        let x = g.param(&p);
        let m = g.mean_all(x);
        assert_eq!(g.value(m).item(), 5.0);
        g.backward(m);
        assert_eq!(p.grad().as_slice(), &[0.25, 0.25, 0.25, 0.25]);
    }

    #[test]
    fn transpose_gradient_round_trips() {
        let p = Param::new(Tensor::from_rows(&[&[1.0, 2.0, 3.0]]));
        let mut g = Graph::new();
        let x = g.param(&p);
        let t = g.transpose(x);
        let w = g.constant(Tensor::col(&[1.0, 2.0, 3.0]));
        let prod = g.mul(t, w);
        let s = g.sum_all(prod);
        g.backward(s);
        assert_eq!(p.grad().as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn reused_param_accumulates_gradients() {
        // y = w * w => dy/dw = 2w
        let w = Param::new(Tensor::scalar(4.0));
        let mut g = Graph::new();
        let w1 = g.param(&w);
        let w2 = g.param(&w);
        let y = g.mul(w1, w2);
        g.backward(y);
        assert_eq!(w.grad().item(), 8.0);
    }

    #[test]
    fn scale_and_add_const() {
        let p = Param::new(Tensor::scalar(3.0));
        let mut g = Graph::new();
        let x = g.param(&p);
        let y = g.scale(x, 2.0);
        let z = g.add_const(y, 10.0);
        assert_eq!(g.value(z).item(), 16.0);
        g.backward(z);
        assert_eq!(p.grad().item(), 2.0);
    }

    #[test]
    fn scale_rows_values_and_gradient() {
        let x = Param::new(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let c = Param::new(Tensor::col(&[10.0, 100.0]));
        let mut g = Graph::new();
        let xv = g.param(&x);
        let cv = g.param(&c);
        let y = g.scale_rows(xv, cv);
        assert_eq!(g.value(y).row_slice(0), &[10.0, 20.0]);
        assert_eq!(g.value(y).row_slice(1), &[300.0, 400.0]);
        let s = g.sum_all(y);
        g.backward(s);
        assert_eq!(x.grad().row_slice(0), &[10.0, 10.0]);
        assert_eq!(x.grad().row_slice(1), &[100.0, 100.0]);
        assert_eq!(c.grad().as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn slice_cols_values_and_gradient() {
        let x = Param::new(Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]));
        let mut g = Graph::new();
        let xv = g.param(&x);
        let y = g.slice_cols(xv, 1, 2);
        assert_eq!(g.value(y).row_slice(0), &[2.0, 3.0]);
        let s = g.sum_all(y);
        g.backward(s);
        assert_eq!(x.grad().row_slice(0), &[0.0, 1.0, 1.0]);
        assert_eq!(x.grad().row_slice(1), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn stable_activations_do_not_overflow() {
        assert!(softplus(1_000.0).is_finite());
        assert!(softplus(-1_000.0) >= 0.0);
        assert!((sigmoid(1_000.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-1_000.0) >= 0.0);
    }

    #[test]
    fn reset_replays_without_reallocation_and_regrads() {
        let w = Param::new(Tensor::row(&[2.0, 3.0]));
        let mut g = Graph::new();
        for step in 0..3 {
            g.reset();
            let x = g.constant_slot(1, 2);
            g.slot_mut(x).copy_from_slice(&[1.0 + step as f64, 1.0]);
            let wv = g.param(&w);
            let y = g.mul(x, wv);
            let s = g.sum_all(y);
            g.backward(s);
            assert_eq!(g.len(), 4);
        }
        // grads accumulated over three replays: x0 = (1,1)+(2,1)+(3,1)
        assert_eq!(w.grad().as_slice(), &[6.0, 3.0]);
    }

    #[test]
    fn reset_releases_param_shares() {
        let w = Param::new(Tensor::scalar(2.0));
        let mut g = Graph::new();
        let wv = g.param(&w);
        let y = g.scale(wv, 3.0);
        let _ = g.value(y);
        g.finish();
        // an in-place update must not observe the graph's released share
        w.update(|v, _| v + 1.0);
        assert_eq!(w.value().item(), 3.0);
        g.reset();
        let wv = g.param(&w);
        assert_eq!(g.value(wv).item(), 3.0);
    }

    #[test]
    fn two_slots_mut_are_disjoint() {
        let mut g = Graph::new();
        let a = g.constant_slot(1, 2);
        let b = g.constant_slot(1, 2);
        let (sa, sb) = g.two_slots_mut(a, b);
        sa.copy_from_slice(&[1.0, 2.0]);
        sb.copy_from_slice(&[3.0, 4.0]);
        assert_eq!(g.value(a).as_slice(), &[1.0, 2.0]);
        assert_eq!(g.value(b).as_slice(), &[3.0, 4.0]);
    }
}
