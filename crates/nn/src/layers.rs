//! Reusable building blocks: linear projections, embeddings, GRU cells and
//! single-head attention.

use rand::Rng;

use crate::graph::{Graph, Var};
use crate::init::xavier;
use crate::param::Param;
use crate::tensor::Tensor;

/// A dense affine projection `y = xW + b`.
///
/// # Examples
///
/// ```
/// use gfs_nn::{Graph, Linear, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let layer = Linear::new(4, 2, &mut rng);
/// let mut g = Graph::new();
/// let x = g.constant(Tensor::zeros(3, 4));
/// let y = layer.forward(&mut g, x);
/// assert_eq!(g.value(y).shape(), (3, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    w: Param,
    b: Param,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Linear {
            w: Param::new(xavier(in_dim, out_dim, rng)),
            b: Param::new(Tensor::zeros(1, out_dim)),
        }
    }

    /// Applies the projection to an `n × in_dim` input via the fused
    /// `xW + b` kernel.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let w = g.param(&self.w);
        let b = g.param(&self.b);
        g.affine(x, w, b)
    }

    /// The trainable parameters `[W, b]`.
    #[must_use]
    pub fn params(&self) -> Vec<Param> {
        vec![self.w.clone(), self.b.clone()]
    }

    /// Input dimension.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.w.shape().0
    }

    /// Output dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.w.shape().1
    }
}

/// A learnable lookup table mapping categorical indices to dense vectors
/// (the `Emb(·)` blocks of Eq. 3 and Eq. 4).
#[derive(Debug, Clone)]
pub struct Embedding {
    table: Param,
}

impl Embedding {
    /// Creates a `vocab × dim` table with Xavier-uniform entries.
    pub fn new<R: Rng>(vocab: usize, dim: usize, rng: &mut R) -> Self {
        Embedding {
            table: Param::new(xavier(vocab, dim, rng)),
        }
    }

    /// Gathers the vectors for `indices`, producing `len(indices) × dim`.
    pub fn forward(&self, g: &mut Graph, indices: &[usize]) -> Var {
        let t = g.param(&self.table);
        g.embedding(t, indices)
    }

    /// The trainable table.
    #[must_use]
    pub fn params(&self) -> Vec<Param> {
        vec![self.table.clone()]
    }

    /// `(vocab, dim)` of the table.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        self.table.shape()
    }
}

/// A gated recurrent unit cell (used by the DeepAR baseline).
#[derive(Debug, Clone)]
pub struct GruCell {
    wz: Param,
    uz: Param,
    bz: Param,
    wr: Param,
    ur: Param,
    br: Param,
    wh: Param,
    uh: Param,
    bh: Param,
    hidden: usize,
}

impl GruCell {
    /// Creates a cell mapping `in_dim` inputs to a `hidden`-sized state.
    pub fn new<R: Rng>(in_dim: usize, hidden: usize, rng: &mut R) -> Self {
        GruCell {
            wz: Param::new(xavier(in_dim, hidden, rng)),
            uz: Param::new(xavier(hidden, hidden, rng)),
            bz: Param::new(Tensor::zeros(1, hidden)),
            wr: Param::new(xavier(in_dim, hidden, rng)),
            ur: Param::new(xavier(hidden, hidden, rng)),
            br: Param::new(Tensor::zeros(1, hidden)),
            wh: Param::new(xavier(in_dim, hidden, rng)),
            uh: Param::new(xavier(hidden, hidden, rng)),
            bh: Param::new(Tensor::zeros(1, hidden)),
            hidden,
        }
    }

    /// Hidden state size.
    #[must_use]
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// An all-zero initial state for a batch of `n` sequences.
    pub fn initial_state(&self, g: &mut Graph, n: usize) -> Var {
        g.constant(Tensor::zeros(n, self.hidden))
    }

    /// Registers the cell's parameters on `g` once, so a long unrolled
    /// recurrence shares nine param nodes instead of creating nine per
    /// step. Call once per graph, then drive [`GruCell::step_bound`].
    pub fn bind(&self, g: &mut Graph) -> GruCellNodes {
        GruCellNodes {
            wz: g.param(&self.wz),
            uz: g.param(&self.uz),
            bz: g.param(&self.bz),
            wr: g.param(&self.wr),
            ur: g.param(&self.ur),
            br: g.param(&self.br),
            wh: g.param(&self.wh),
            uh: g.param(&self.uh),
            bh: g.param(&self.bh),
        }
    }

    /// One recurrence step: consumes input `x` (`n × in_dim`) and previous
    /// state `h` (`n × hidden`), returns the next state.
    pub fn step(&self, g: &mut Graph, x: Var, h: Var) -> Var {
        let nodes = self.bind(g);
        self.step_bound(g, &nodes, x, h)
    }

    /// One recurrence step over pre-bound parameter nodes, built from the
    /// fused kernels: each gate is one [`Graph::affine2`] node and the
    /// state update one [`Graph::blend`] node — eight nodes per step where
    /// the op-by-op construction needed twenty (the recurrent hot path is
    /// tape-overhead-bound, not flop-bound).
    pub fn step_bound(&self, g: &mut Graph, n: &GruCellNodes, x: Var, h: Var) -> Var {
        let z_pre = g.affine2(x, n.wz, h, n.uz, n.bz);
        let z = g.sigmoid(z_pre);
        let r_pre = g.affine2(x, n.wr, h, n.ur, n.br);
        let r = g.sigmoid(r_pre);
        let rh = g.mul(r, h);
        let cand_pre = g.affine2(x, n.wh, rh, n.uh, n.bh);
        let cand = g.tanh(cand_pre);
        // h' = (1 - z) ⊙ h + z ⊙ cand
        g.blend(z, h, cand)
    }

    /// Runs the whole unrolled recurrence as one fused tape entry (see
    /// [`Graph::gru_scan`]): `xs` packs the step inputs time-major
    /// (`(steps·batch) × in_dim`, rows `[t·batch, (t+1)·batch)` are step
    /// `t`), the initial state is zero, and the returned node holds the
    /// final hidden state. Bit-identical to driving
    /// [`GruCell::step_bound`] `steps` times from
    /// [`GruCell::initial_state`].
    pub fn scan(&self, g: &mut Graph, xs: Var, steps: usize) -> Var {
        let nodes = self.bind(g);
        g.gru_scan(xs, steps, &nodes)
    }

    /// All trainable parameters of the cell.
    #[must_use]
    pub fn params(&self) -> Vec<Param> {
        vec![
            self.wz.clone(),
            self.uz.clone(),
            self.bz.clone(),
            self.wr.clone(),
            self.ur.clone(),
            self.br.clone(),
            self.wh.clone(),
            self.uh.clone(),
            self.bh.clone(),
        ]
    }
}

/// Parameter nodes of a [`GruCell`] registered on one graph via
/// [`GruCell::bind`].
#[derive(Debug, Clone, Copy)]
pub struct GruCellNodes {
    pub(crate) wz: Var,
    pub(crate) uz: Var,
    pub(crate) bz: Var,
    pub(crate) wr: Var,
    pub(crate) ur: Var,
    pub(crate) br: Var,
    pub(crate) wh: Var,
    pub(crate) uh: Var,
    pub(crate) bh: Var,
}

/// Single-head scaled dot-product self-attention over a `L × d` sequence.
///
/// Used (with different windowing) by the Transformer, Informer, Autoformer
/// and FEDformer baselines, and by OrgLinear's business-attribute fusion
/// (Eq. 4).
#[derive(Debug, Clone)]
pub struct Attention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    dim: usize,
}

impl Attention {
    /// Creates an attention block over `dim`-sized token vectors.
    pub fn new<R: Rng>(dim: usize, rng: &mut R) -> Self {
        Attention {
            wq: Linear::new(dim, dim, rng),
            wk: Linear::new(dim, dim, rng),
            wv: Linear::new(dim, dim, rng),
            dim,
        }
    }

    /// Applies self-attention: `softmax(QKᵀ/√d)·V`.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let q = self.wq.forward(g, x);
        let k = self.wk.forward(g, x);
        let v = self.wv.forward(g, x);
        let kt = g.transpose(k);
        let scores = g.matmul(q, kt);
        let scaled = g.scale(scores, 1.0 / (self.dim as f64).sqrt());
        let attn = g.softmax_rows(scaled);
        g.matmul(attn, v)
    }

    /// All trainable parameters.
    #[must_use]
    pub fn params(&self) -> Vec<Param> {
        let mut p = self.wq.params();
        p.extend(self.wk.params());
        p.extend(self.wv.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn linear_shapes() {
        let layer = Linear::new(3, 5, &mut rng());
        assert_eq!(layer.in_dim(), 3);
        assert_eq!(layer.out_dim(), 5);
        let mut g = Graph::new();
        let x = g.constant(Tensor::zeros(2, 3));
        let y = layer.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (2, 5));
        assert_eq!(layer.params().len(), 2);
    }

    #[test]
    fn linear_learns_identity_direction() {
        // one gradient step on y = xW + b must reduce a simple MSE
        let layer = Linear::new(1, 1, &mut rng());
        let mut prev_loss = f64::INFINITY;
        for _ in 0..100 {
            let mut g = Graph::new();
            let x = g.constant(Tensor::col(&[1.0, 2.0, 3.0]));
            let target = g.constant(Tensor::col(&[2.0, 4.0, 6.0]));
            let y = layer.forward(&mut g, x);
            let d = g.sub(y, target);
            let sq = g.mul(d, d);
            let loss = g.mean_all(sq);
            let lv = g.value(loss).item();
            assert!(
                lv <= prev_loss + 1e-9,
                "loss must not increase: {lv} > {prev_loss}"
            );
            prev_loss = lv;
            g.backward(loss);
            for p in layer.params() {
                p.update(|v, gr| v - 0.05 * gr);
                p.zero_grad();
            }
        }
        assert!(prev_loss < 0.05, "did not converge: {prev_loss}");
    }

    #[test]
    fn embedding_gathers() {
        let emb = Embedding::new(10, 4, &mut rng());
        assert_eq!(emb.shape(), (10, 4));
        let mut g = Graph::new();
        let e = emb.forward(&mut g, &[1, 1, 7]);
        assert_eq!(g.value(e).shape(), (3, 4));
        assert_eq!(g.value(e).row_slice(0), g.value(e).row_slice(1));
    }

    #[test]
    fn gru_step_shapes_and_bounded_state() {
        let cell = GruCell::new(2, 6, &mut rng());
        assert_eq!(cell.hidden_size(), 6);
        let mut g = Graph::new();
        let mut h = cell.initial_state(&mut g, 1);
        for t in 0..5 {
            let x = g.constant(Tensor::row(&[t as f64, 1.0]));
            h = cell.step(&mut g, x, h);
        }
        assert_eq!(g.value(h).shape(), (1, 6));
        // GRU state is a convex mix of tanh outputs: bounded by 1
        for &v in g.value(h).as_slice() {
            assert!(v.abs() <= 1.0 + 1e-9);
        }
        assert_eq!(cell.params().len(), 9);
    }

    #[test]
    fn attention_preserves_shape_and_rows_mix() {
        let att = Attention::new(4, &mut rng());
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0],
        ]));
        let y = att.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (3, 4));
        assert_eq!(att.params().len(), 6);
    }

    #[test]
    fn attention_gradients_flow() {
        let att = Attention::new(3, &mut rng());
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_rows(&[&[0.5, -0.2, 0.1], &[0.3, 0.8, -0.4]]));
        let y = att.forward(&mut g, x);
        let loss = g.sum_all(y);
        g.backward(loss);
        let total_grad: f64 = att.params().iter().map(|p| p.grad().norm()).sum();
        assert!(total_grad > 0.0, "some gradient must reach the projections");
    }
}
