//! Trainable parameters shared between graphs and optimizers.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::tensor::Tensor;

#[derive(Debug)]
struct ParamData {
    value: Tensor,
    grad: Tensor,
}

/// A trainable tensor with an accumulated gradient.
///
/// `Param` is a cheaply clonable handle (`Rc`-based) so a model, the graphs
/// it builds, and the optimizer can all refer to the same storage.
///
/// # Examples
///
/// ```
/// use gfs_nn::{Param, Tensor};
///
/// let p = Param::new(Tensor::scalar(1.5));
/// assert_eq!(p.value().item(), 1.5);
/// assert_eq!(p.grad().item(), 0.0);
/// ```
#[derive(Clone)]
pub struct Param {
    data: Rc<RefCell<ParamData>>,
}

impl Param {
    /// Wraps a tensor as a trainable parameter with zero gradient.
    #[must_use]
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.rows(), value.cols());
        Param {
            data: Rc::new(RefCell::new(ParamData { value, grad })),
        }
    }

    /// A snapshot of the current value (an O(1) copy-on-write share: later
    /// optimizer updates copy the buffer rather than mutating the
    /// snapshot, so holders must release stale shares to keep updates
    /// allocation-free — the graph arena does this in `backward`/`finish`).
    #[must_use]
    pub fn value(&self) -> Tensor {
        self.data.borrow().value.clone()
    }

    /// A snapshot of the accumulated gradient.
    #[must_use]
    pub fn grad(&self) -> Tensor {
        self.data.borrow().grad.clone()
    }

    /// Parameter shape.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        self.data.borrow().value.shape()
    }

    /// Number of scalar weights.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.borrow().value.len()
    }

    /// Whether the parameter holds zero weights.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `g` into the accumulated gradient.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn accumulate_grad(&self, g: &Tensor) {
        self.data.borrow_mut().grad.add_scaled(g, 1.0);
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        self.data.borrow_mut().grad.fill_zero();
    }

    /// Applies an in-place update `value[i] = f(value[i], grad[i])`.
    ///
    /// Borrows `value` and `grad` as disjoint fields (no placeholder swap —
    /// even an empty `Tensor` costs an `Rc` box, and this runs per
    /// parameter per optimizer step).
    // gfs-lint: hot(tape)
    pub fn update(&self, mut f: impl FnMut(f64, f64) -> f64) {
        let mut borrow = self.data.borrow_mut();
        let ParamData { value, grad } = &mut *borrow;
        for (v, g) in value.as_mut_slice().iter_mut().zip(grad.as_slice()) {
            *v = f(*v, *g);
        }
    }

    /// Hands the optimizer raw `(value, grad)` slices for one fused,
    /// vectorizable pass — the closure-per-element [`Param::update`] can't
    /// auto-vectorize `sqrt`/`div` chains, which made optimizer steps a
    /// measurable share of training time.
    // gfs-lint: hot(tape)
    pub fn update_slices(&self, f: impl FnOnce(&mut [f64], &[f64])) {
        let mut borrow = self.data.borrow_mut();
        let ParamData { value, grad } = &mut *borrow;
        f(value.as_mut_slice(), grad.as_slice());
    }

    /// Replaces the value outright (used by tests and serialization).
    pub fn set_value(&self, value: Tensor) {
        let mut d = self.data.borrow_mut();
        assert_eq!(d.value.shape(), value.shape(), "set_value shape mismatch");
        d.value = value;
    }

    /// Whether two handles share the same underlying storage.
    #[must_use]
    pub fn ptr_eq(&self, other: &Param) -> bool {
        Rc::ptr_eq(&self.data, &other.data)
    }
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.data.borrow();
        write!(
            f,
            "Param(shape={:?}, |grad|={:.4})",
            d.value.shape(),
            d.grad.norm()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let p = Param::new(Tensor::scalar(1.0));
        let q = p.clone();
        q.accumulate_grad(&Tensor::scalar(2.0));
        assert_eq!(p.grad().item(), 2.0);
        assert!(p.ptr_eq(&q));
    }

    #[test]
    fn zero_grad_clears() {
        let p = Param::new(Tensor::scalar(1.0));
        p.accumulate_grad(&Tensor::scalar(3.0));
        p.zero_grad();
        assert_eq!(p.grad().item(), 0.0);
    }

    #[test]
    fn update_applies_rule() {
        let p = Param::new(Tensor::row(&[1.0, 2.0]));
        p.accumulate_grad(&Tensor::row(&[0.5, 0.5]));
        p.update(|v, g| v - g);
        assert_eq!(p.value().as_slice(), &[0.5, 1.5]);
    }

    #[test]
    fn grads_accumulate_across_calls() {
        let p = Param::new(Tensor::scalar(0.0));
        p.accumulate_grad(&Tensor::scalar(1.0));
        p.accumulate_grad(&Tensor::scalar(2.0));
        assert_eq!(p.grad().item(), 3.0);
    }

    #[test]
    #[should_panic(expected = "set_value shape mismatch")]
    fn set_value_checks_shape() {
        Param::new(Tensor::scalar(1.0)).set_value(Tensor::row(&[1.0, 2.0]));
    }
}
