//! Loss functions composed from graph primitives.

use crate::graph::{Graph, Var};

/// Mean squared error between `pred` and `target` (same shapes).
pub fn mse(g: &mut Graph, pred: Var, target: Var) -> Var {
    let d = g.sub(pred, target);
    let sq = g.mul(d, d);
    g.mean_all(sq)
}

/// Mean absolute-error surrogate: smooth L1 with quadratic region `|x| < 1`.
pub fn huber(g: &mut Graph, pred: Var, target: Var) -> Var {
    // 0.5 d² for |d| <= 1, |d| - 0.5 otherwise — implemented with a smooth
    // approximation sqrt(d² + eps) - eps to stay in the primitive set.
    let d = g.sub(pred, target);
    let sq = g.mul(d, d);
    let shifted = g.add_const(sq, 1e-8);
    let ln = g.ln(shifted);
    let half = g.scale(ln, 0.5);
    let abs = g.exp(half); // sqrt(d² + eps)
    g.mean_all(abs)
}

/// Gaussian negative log-likelihood of `target` under `N(mu, sigma²)`,
/// averaged over all elements — the distributional objective of Eq. 8:
///
/// `L = mean( ln σ + ((y − μ)/σ)²/2 ) + ln(2π)/2`.
///
/// `sigma` must be strictly positive (use a softplus head as in Eq. 7).
pub fn gaussian_nll(g: &mut Graph, mu: Var, sigma: Var, target: Var) -> Var {
    // fused single-node implementation: one forward pass and closed-form
    // gradients instead of an eight-op elementwise chain
    g.gaussian_nll(mu, sigma, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use crate::tensor::Tensor;

    #[test]
    fn mse_zero_at_match() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::row(&[1.0, 2.0]));
        let b = g.constant(Tensor::row(&[1.0, 2.0]));
        let l = mse(&mut g, a, b);
        assert_eq!(g.value(l).item(), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::row(&[0.0, 0.0]));
        let b = g.constant(Tensor::row(&[3.0, 4.0]));
        let l = mse(&mut g, a, b);
        assert_eq!(g.value(l).item(), 12.5);
    }

    #[test]
    fn gaussian_nll_matches_closed_form() {
        // NLL of y=0 under N(0, 1) is 0.5 ln(2π)
        let mut g = Graph::new();
        let mu = g.constant(Tensor::scalar(0.0));
        let sigma = g.constant(Tensor::scalar(1.0));
        let y = g.constant(Tensor::scalar(0.0));
        let l = gaussian_nll(&mut g, mu, sigma, y);
        let expected = 0.5 * (2.0 * std::f64::consts::PI).ln();
        assert!((g.value(l).item() - expected).abs() < 1e-12);
    }

    #[test]
    fn gaussian_nll_penalises_distance_and_overconfidence() {
        let nll = |mu: f64, sigma: f64, y: f64| {
            let mut g = Graph::new();
            let m = g.constant(Tensor::scalar(mu));
            let s = g.constant(Tensor::scalar(sigma));
            let t = g.constant(Tensor::scalar(y));
            let l = gaussian_nll(&mut g, m, s, t);
            g.value(l).item()
        };
        assert!(nll(0.0, 1.0, 2.0) > nll(0.0, 1.0, 0.5));
        // being overconfident (small sigma) about a wrong mean is worse
        assert!(nll(0.0, 0.1, 2.0) > nll(0.0, 1.0, 2.0));
    }

    #[test]
    fn gaussian_nll_gradient_pulls_mu_toward_target() {
        let mu = Param::new(Tensor::scalar(0.0));
        let mut g = Graph::new();
        let m = g.param(&mu);
        let s = g.constant(Tensor::scalar(1.0));
        let y = g.constant(Tensor::scalar(5.0));
        let l = gaussian_nll(&mut g, m, s, y);
        g.backward(l);
        assert!(
            mu.grad().item() < 0.0,
            "gradient must push mu upward via -grad"
        );
    }

    #[test]
    fn huber_is_small_near_zero() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::row(&[1.0]));
        let b = g.constant(Tensor::row(&[1.0]));
        let l = huber(&mut g, a, b);
        assert!(g.value(l).item() < 1e-3);
    }
}
