//! Gradient-descent optimizers.

use crate::param::Param;
use crate::tensor::Tensor;

/// A first-order optimizer over a fixed set of [`Param`]s.
pub trait Optimizer {
    /// Applies one update step using the accumulated gradients, then clears
    /// them.
    fn step(&mut self);

    /// Clears all accumulated gradients without updating.
    fn zero_grad(&mut self);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Param>,
    lr: f64,
    momentum: f64,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer over `params` with learning rate `lr`.
    #[must_use]
    pub fn new(params: Vec<Param>, lr: f64) -> Self {
        Sgd::with_momentum(params, lr, 0.0)
    }

    /// Creates SGD with momentum `mu` (0 disables momentum).
    #[must_use]
    pub fn with_momentum(params: Vec<Param>, lr: f64, mu: f64) -> Self {
        let velocity = params
            .iter()
            .map(|p| {
                let (r, c) = p.shape();
                Tensor::zeros(r, c)
            })
            .collect();
        Sgd {
            params,
            lr,
            momentum: mu,
            velocity,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for (p, v) in self.params.iter().zip(&mut self.velocity) {
            let g = p.grad();
            if self.momentum > 0.0 {
                for (vi, gi) in v.as_mut_slice().iter_mut().zip(g.as_slice()) {
                    *vi = self.momentum * *vi + gi;
                }
                let lr = self.lr;
                let mut i = 0;
                let vv = v.clone();
                p.update(|val, _| {
                    let out = val - lr * vv.as_slice()[i];
                    i += 1;
                    out
                });
            } else {
                let lr = self.lr;
                p.update(|val, g| val - lr * g);
            }
            p.zero_grad();
        }
    }

    fn zero_grad(&mut self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

/// Adam (Kingma & Ba) with bias correction — the optimizer used to train
/// OrgLinear and all forecasting baselines.
#[derive(Debug)]
pub struct Adam {
    params: Vec<Param>,
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the standard hyper-parameters
    /// (`β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`).
    #[must_use]
    pub fn new(params: Vec<Param>, lr: f64) -> Self {
        let zeros: Vec<Tensor> = params
            .iter()
            .map(|p| {
                let (r, c) = p.shape();
                Tensor::zeros(r, c)
            })
            .collect();
        Adam {
            params,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: zeros.clone(),
            v: zeros,
        }
    }

    /// Number of steps taken so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        // algebraically identical reformulation of
        // `lr · (m/bc1) / (sqrt(v/bc2) + ε)` with the per-element divisions
        // by the bias corrections hoisted out of the loop: one sqrt and one
        // divide per weight instead of three divides and a sqrt
        let step_size = self.lr / bc1;
        let inv_sqrt_bc2 = 1.0 / bc2.sqrt();
        for ((p, m), v) in self.params.iter().zip(&mut self.m).zip(&mut self.v) {
            // single fused pass over raw slices: moments, bias correction
            // and the weight update vectorize together, with no tensor
            // clones on the per-batch hot path
            let (beta1, beta2) = (self.beta1, self.beta2);
            let eps = self.eps;
            let ms = m.as_mut_slice();
            let vs = v.as_mut_slice();
            p.update_slices(|vals, grads| {
                let n = vals.len();
                assert!(grads.len() == n && ms.len() == n && vs.len() == n);
                for i in 0..n {
                    let gi = grads[i];
                    let mi = beta1 * ms[i] + (1.0 - beta1) * gi;
                    let vi = beta2 * vs[i] + (1.0 - beta2) * gi * gi;
                    ms[i] = mi;
                    vs[i] = vi;
                    vals[i] -= step_size * mi / (vi.sqrt() * inv_sqrt_bc2 + eps);
                }
            });
            p.zero_grad();
        }
    }

    fn zero_grad(&mut self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimise f(x) = (x - 3)² with the given optimizer; return final x.
    fn minimise(opt: &mut dyn Optimizer, x: &Param, iters: usize) -> f64 {
        for _ in 0..iters {
            let mut g = Graph::new();
            let xv = g.param(x);
            let c = g.add_const(xv, -3.0);
            let sq = g.mul(c, c);
            g.backward(sq);
            opt.step();
        }
        x.value().item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = Param::new(Tensor::scalar(0.0));
        let mut opt = Sgd::new(vec![x.clone()], 0.1);
        let final_x = minimise(&mut opt, &x, 100);
        assert!((final_x - 3.0).abs() < 1e-3, "got {final_x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let x = Param::new(Tensor::scalar(0.0));
        let mut opt = Sgd::with_momentum(vec![x.clone()], 0.05, 0.9);
        let final_x = minimise(&mut opt, &x, 200);
        assert!((final_x - 3.0).abs() < 1e-2, "got {final_x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = Param::new(Tensor::scalar(0.0));
        let mut opt = Adam::new(vec![x.clone()], 0.2);
        let final_x = minimise(&mut opt, &x, 200);
        assert!((final_x - 3.0).abs() < 1e-2, "got {final_x}");
        assert_eq!(opt.steps(), 200);
    }

    #[test]
    fn step_clears_gradients() {
        let x = Param::new(Tensor::scalar(1.0));
        let mut opt = Adam::new(vec![x.clone()], 0.1);
        x.accumulate_grad(&Tensor::scalar(1.0));
        opt.step();
        assert_eq!(x.grad().item(), 0.0);
    }

    #[test]
    fn zero_grad_without_step() {
        let x = Param::new(Tensor::scalar(1.0));
        let before = x.value().item();
        let mut opt = Sgd::new(vec![x.clone()], 0.1);
        x.accumulate_grad(&Tensor::scalar(5.0));
        opt.zero_grad();
        assert_eq!(x.grad().item(), 0.0);
        assert_eq!(x.value().item(), before, "zero_grad must not update");
    }
}
