//! Dense 2-D tensors of `f64` with copy-on-write storage.
//!
//! Every quantity in the forecasting stack — sequences, embeddings, weight
//! matrices — is a row-major matrix. Vectors are represented as `1 × n` or
//! `n × 1` matrices, scalars as `1 × 1`.
//!
//! Storage is an `Rc<Vec<f64>>`: cloning a tensor is a reference-count bump,
//! and the first mutation of a shared tensor copies the buffer
//! ([`Rc::make_mut`]). This is what lets the tape arena share parameter
//! values with the optimizer without per-batch weight clones — see the
//! crate-level docs.

use std::fmt;
use std::ops::{Index, IndexMut};
use std::rc::Rc;

use rand::Rng;

/// Rows of the RHS processed per tile of the blocked kernel: a tile of
/// `KC × n` B-rows stays hot in L1/L2 while every output row streams
/// over it.
const MATMUL_KC: usize = 64;

/// Fused multiply-add when the build target guarantees an FMA unit
/// (e.g. `-C target-cpu=x86-64-v3`, see `.cargo/config.toml`);
/// otherwise a plain multiply-add, because `f64::mul_add` without an
/// FMA instruction falls back to a (correctly-rounded but ~20×
/// slower) libm call. The two differ in the final bit of rounding;
/// nothing in the workspace depends on cross-target bit-equality of
/// training math.
#[inline(always)]
fn fmadd(a: f64, b: f64, c: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        c + a * b
    }
}

/// The blocked axpy kernel shared by all matmul entry points:
/// `out_row += Σ a[kb..] · b_row[kb..]` over one tile of `k`. Unrolled
/// four B-rows deep so the output row stays in registers across four
/// accumulations (quartering load/store traffic) while keeping the
/// exact k-ascending accumulation order of the naive kernel.
// gfs-lint: hot(tape)
#[inline]
fn axpy_tile(out_row: &mut [f64], a_row: &[f64], b: &[f64], n: usize, kb: usize, kend: usize) {
    let mut kk = kb;
    while kk + 4 <= kend {
        let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
        let b0 = &b[kk * n..kk * n + n];
        let b1 = &b[(kk + 1) * n..(kk + 1) * n + n];
        let b2 = &b[(kk + 2) * n..(kk + 2) * n + n];
        let b3 = &b[(kk + 3) * n..(kk + 3) * n + n];
        for j in 0..n {
            let mut o = out_row[j];
            o = fmadd(a0, b0[j], o);
            o = fmadd(a1, b1[j], o);
            o = fmadd(a2, b2[j], o);
            o = fmadd(a3, b3[j], o);
            out_row[j] = o;
        }
        kk += 4;
    }
    while kk < kend {
        let a = a_row[kk];
        let b_row = &b[kk * n..(kk + 1) * n];
        for (o, bv) in out_row.iter_mut().zip(b_row) {
            *o = fmadd(a, *bv, *o);
        }
        kk += 1;
    }
}

/// Slice-level blocked matmul: `out (+)= a · b` with `a` an `m × k` and `b`
/// a `k × n` row-major buffer. With `accumulate == false` the output is
/// overwritten and the result is bit-identical to [`Tensor::matmul`]; with
/// `accumulate == true` the product is added on top of the existing values
/// in the same k-ascending order as [`Tensor::add_matmul`].
///
/// This is the entry point the fused GRU scan drives directly over
/// preallocated scratch, bypassing tensor construction entirely.
// gfs-lint: hot(tape)
pub(crate) fn matmul_slices(
    a: &[f64],
    m: usize,
    k: usize,
    b: &[f64],
    n: usize,
    out: &mut [f64],
    accumulate: bool,
) {
    debug_assert_eq!(a.len(), m * k, "matmul_slices lhs length");
    debug_assert_eq!(b.len(), k * n, "matmul_slices rhs length");
    debug_assert_eq!(out.len(), m * n, "matmul_slices out length");
    if !accumulate {
        out.iter_mut().for_each(|v| *v = 0.0);
    }
    let mut kb = 0;
    while kb < k {
        let kend = (kb + MATMUL_KC).min(k);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            axpy_tile(out_row, a_row, b, n, kb, kend);
        }
        kb = kend;
    }
}

/// Slice-level `out (+)= aᵀ · b` without materializing the transpose
/// (`a` is `m × k` so the product is `k × n`). Same i-ascending
/// accumulation order as [`Tensor::matmul_transa`], so overwriting a
/// zeroed buffer is bit-identical to it.
// gfs-lint: hot(tape)
pub(crate) fn matmul_transa_slices(
    a: &[f64],
    m: usize,
    k: usize,
    b: &[f64],
    n: usize,
    out: &mut [f64],
    accumulate: bool,
) {
    debug_assert_eq!(a.len(), m * k, "matmul_transa_slices lhs length");
    debug_assert_eq!(b.len(), m * n, "matmul_transa_slices rhs length");
    debug_assert_eq!(out.len(), k * n, "matmul_transa_slices out length");
    if !accumulate {
        out.iter_mut().for_each(|v| *v = 0.0);
    }
    // four LHS rows per pass so each output row is loaded/stored once
    // per quartet; sequential adds keep the i-ascending accumulation
    // order of the plain loop
    let mut i = 0;
    while i + 4 <= m {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        let r0 = &b[i * n..(i + 1) * n];
        let r1 = &b[(i + 1) * n..(i + 2) * n];
        let r2 = &b[(i + 2) * n..(i + 3) * n];
        let r3 = &b[(i + 3) * n..(i + 4) * n];
        for kk in 0..k {
            let out_row = &mut out[kk * n..(kk + 1) * n];
            let (c0, c1, c2, c3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
            for j in 0..n {
                let mut o = out_row[j];
                o = fmadd(c0, r0[j], o);
                o = fmadd(c1, r1[j], o);
                o = fmadd(c2, r2[j], o);
                o = fmadd(c3, r3[j], o);
                out_row[j] = o;
            }
        }
        i += 4;
    }
    while i < m {
        let a_row = &a[i * k..(i + 1) * k];
        let rhs_row = &b[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            let out_row = &mut out[kk * n..(kk + 1) * n];
            for (o, bv) in out_row.iter_mut().zip(rhs_row) {
                *o += av * bv;
            }
        }
        i += 1;
    }
}

/// Slice-level transpose of an `rows × cols` buffer into `out`.
// gfs-lint: hot(tape)
pub(crate) fn transpose_slices(src: &[f64], rows: usize, cols: usize, out: &mut [f64]) {
    debug_assert_eq!(src.len(), rows * cols, "transpose_slices src length");
    debug_assert_eq!(out.len(), rows * cols, "transpose_slices out length");
    for i in 0..rows {
        for j in 0..cols {
            out[j * rows + i] = src[i * cols + j];
        }
    }
}

/// A dense row-major matrix of `f64`.
///
/// Cloning is O(1) (a reference-count bump); the buffer is copied lazily on
/// the first mutation of a shared tensor.
///
/// # Examples
///
/// ```
/// use gfs_nn::Tensor;
///
/// let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Tensor::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// assert_eq!(a[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Rc<Vec<f64>>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: Rc::new(vec![0.0; rows * cols]),
        }
    }

    /// Creates a tensor filled with a constant.
    #[must_use]
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Tensor {
            rows,
            cols,
            data: Rc::new(vec![value; rows * cols]),
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(n, n);
        for i in 0..n {
            t[(i, i)] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Tensor {
            rows,
            cols,
            data: Rc::new(data),
        }
    }

    /// Creates a tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    #[must_use]
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor {
            rows: rows.len(),
            cols,
            data: Rc::new(data),
        }
    }

    /// Creates a `1 × n` row vector.
    #[must_use]
    pub fn row(values: &[f64]) -> Self {
        Tensor::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates an `n × 1` column vector.
    #[must_use]
    pub fn col(values: &[f64]) -> Self {
        Tensor::from_vec(values.len(), 1, values.to_vec())
    }

    /// Creates a `1 × 1` scalar tensor.
    #[must_use]
    pub fn scalar(v: f64) -> Self {
        Tensor::from_vec(1, 1, vec![v])
    }

    /// Fills the tensor with samples from `U(-limit, limit)`.
    ///
    /// Samples carry 27 random mantissa bits (one `u32` draw each instead
    /// of a `u64`): ample resolution for weight initialisation at half the
    /// generator cost — tensor construction is RNG-bound and sits inside
    /// every model-build benchmark.
    #[must_use]
    pub fn uniform<R: Rng>(rows: usize, cols: usize, limit: f64, rng: &mut R) -> Self {
        let scale = 2.0 * limit / (1u32 << 27) as f64;
        let data = (0..rows * cols)
            .map(|_| {
                let v = (rng.next_u32() >> 5) as f64 * scale - limit;
                // the grid includes -limit exactly; keep the interval open
                if v <= -limit {
                    0.0
                } else {
                    v
                }
            })
            .collect();
        Tensor {
            rows,
            cols,
            data: Rc::new(data),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    ///
    /// If the buffer is shared with another tensor this copies it first
    /// (copy-on-write); on a uniquely-owned tensor it is free.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        Rc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Whether this tensor's buffer is shared with another tensor
    /// (i.e. mutation would trigger a copy).
    #[must_use]
    pub fn is_shared(&self) -> bool {
        Rc::strong_count(&self.data) > 1
    }

    /// Reshapes the tensor in place to `rows × cols`, reusing the existing
    /// buffer allocation whenever its capacity suffices. Existing element
    /// values are **not** meaningful afterwards — callers are expected to
    /// overwrite the full buffer. Grows with zeros when the logical size
    /// increases.
    // gfs-lint: hot(tape)
    pub fn resize_reuse(&mut self, rows: usize, cols: usize) {
        let data = Rc::make_mut(&mut self.data);
        data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Copies `src` into `self`, reshaping and reusing the buffer.
    // gfs-lint: hot(tape)
    pub fn copy_from(&mut self, src: &Tensor) {
        let data = Rc::make_mut(&mut self.data);
        data.resize(src.rows * src.cols, 0.0);
        data.copy_from_slice(&src.data);
        self.rows = src.rows;
        self.cols = src.cols;
    }

    /// The single element of a `1 × 1` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `1 × 1`.
    #[must_use]
    pub fn item(&self) -> f64 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Borrowed view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row_slice(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.
    ///
    /// The kernel is a cache-blocked, register-unrolled row-major axpy:
    /// the inner dimension is processed in tiles of `MATMUL_KC`
    /// B-rows (so large right-hand sides stay cache-resident across output
    /// rows) and four B-rows are fused per pass so the output row lives in
    /// registers. Accumulation order per output element is exactly the
    /// k-ascending order of the textbook kernel, so results are
    /// bit-identical to it. Each output row's accumulation depends only on
    /// that LHS row, so batching extra rows into one call is bit-identical
    /// per row — the property the batched GDE forward relies on.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    #[must_use]
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        self.matmul_impl(rhs, None)
    }

    /// Fused affine product `self · rhs + bias` for a `1 × rhs.cols` bias
    /// row broadcast over the output rows — one pass instead of a matmul
    /// followed by a broadcast add (the `xW + b` of every linear layer).
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree or the bias is not
    /// `1 × rhs.cols`.
    #[must_use]
    pub fn matmul_add(&self, rhs: &Tensor, bias: &Tensor) -> Tensor {
        assert_eq!(
            bias.shape(),
            (1, rhs.cols),
            "matmul_add bias must be 1x{}, got {:?}",
            rhs.cols,
            bias.shape()
        );
        self.matmul_impl(rhs, Some(bias))
    }

    /// In-place variant of [`Tensor::matmul_add`] writing into `out`
    /// (reshaped and reused) — the arena's allocation-free affine forward.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent.
    // gfs-lint: hot(tape)
    pub fn matmul_add_into(&self, rhs: &Tensor, bias: Option<&Tensor>, out: &mut Tensor) {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul_add_into dimension mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        out.resize_reuse(m, n);
        let out_data = Rc::make_mut(&mut out.data);
        match bias {
            Some(b) => {
                assert_eq!(b.shape(), (1, n), "matmul_add_into bias shape");
                for r in 0..m {
                    out_data[r * n..(r + 1) * n].copy_from_slice(&b.data);
                }
                matmul_slices(&self.data, m, k, &rhs.data, n, out_data, true);
            }
            None => matmul_slices(&self.data, m, k, &rhs.data, n, out_data, false),
        }
    }

    fn matmul_impl(&self, rhs: &Tensor, bias: Option<&Tensor>) -> Tensor {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul dimension mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        self.matmul_add_into(rhs, bias, &mut out);
        out
    }

    /// In-place `self += lhs · rhs`, reusing the blocked axpy kernel —
    /// lets fused ops accumulate a second product without an intermediate
    /// allocation (e.g. the GRU gate `xW + hU + b`).
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent.
    // gfs-lint: hot(tape)
    pub fn add_matmul(&mut self, lhs: &Tensor, rhs: &Tensor) {
        assert_eq!(lhs.cols, rhs.rows, "add_matmul inner dimension mismatch");
        assert_eq!(
            (self.rows, self.cols),
            (lhs.rows, rhs.cols),
            "add_matmul output shape mismatch"
        );
        let (m, k, n) = (lhs.rows, lhs.cols, rhs.cols);
        let out_data = Rc::make_mut(&mut self.data);
        matmul_slices(&lhs.data, m, k, &rhs.data, n, out_data, true);
    }

    /// `self · rhsᵀ` (used by backprop: `∂x = ∂y · Wᵀ`). Implemented as a
    /// cheap transposition pass into the blocked axpy kernel: a dot-product
    /// formulation that avoids the transpose was measured slower here,
    /// because the contiguous axpy loop vectorizes and the dots do not.
    ///
    /// # Panics
    ///
    /// Panics if the column counts disagree.
    #[must_use]
    pub fn matmul_transb(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            rhs.cols,
            "matmul_transb dimension mismatch: {:?} x {:?}ᵀ",
            self.shape(),
            rhs.shape()
        );
        self.matmul_impl(&rhs.transposed(), None)
    }

    /// `selfᵀ · rhs` without materializing the transpose (used by
    /// backprop: `∂W = xᵀ · ∂y`). Accumulates scaled `rhs` rows, so every
    /// access is contiguous.
    ///
    /// # Panics
    ///
    /// Panics if the row counts disagree.
    #[must_use]
    pub fn matmul_transa(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.rows,
            rhs.rows,
            "matmul_transa dimension mismatch: {:?}ᵀ x {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Tensor::zeros(self.cols, rhs.cols);
        let out_data = Rc::make_mut(&mut out.data);
        matmul_transa_slices(
            &self.data, self.rows, self.cols, &rhs.data, rhs.cols, out_data, true,
        );
        out
    }

    /// In-place `self += lhsᵀ · rhs` (the accumulating form of
    /// [`Tensor::matmul_transa`]; identical accumulation order, so running
    /// it on a zeroed tensor is bit-identical to the allocating form).
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent.
    // gfs-lint: hot(tape)
    pub fn add_matmul_transa(&mut self, lhs: &Tensor, rhs: &Tensor) {
        assert_eq!(lhs.rows, rhs.rows, "add_matmul_transa row mismatch");
        assert_eq!(
            (self.rows, self.cols),
            (lhs.cols, rhs.cols),
            "add_matmul_transa output shape mismatch"
        );
        let out_data = Rc::make_mut(&mut self.data);
        matmul_transa_slices(
            &lhs.data, lhs.rows, lhs.cols, &rhs.data, rhs.cols, out_data, true,
        );
    }

    /// Transposed copy.
    #[must_use]
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        let out_data = Rc::make_mut(&mut out.data);
        transpose_slices(&self.data, self.rows, self.cols, out_data);
        out
    }

    /// Transposes `self` into `out`, reshaping and reusing its buffer —
    /// the arena's allocation-free transpose (backprop keeps one transpose
    /// scratch per graph instead of allocating per `∂x = ∂y · Wᵀ`).
    // gfs-lint: hot(tape)
    pub fn transpose_into(&self, out: &mut Tensor) {
        out.resize_reuse(self.cols, self.rows);
        let out_data = Rc::make_mut(&mut out.data);
        transpose_slices(&self.data, self.rows, self.cols, out_data);
    }

    /// Element-wise map into a new tensor.
    #[must_use]
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: Rc::new(self.data.iter().map(|&v| f(v)).collect()),
        }
    }

    /// Element-wise combination of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    #[must_use]
    pub fn zip(&self, rhs: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "zip shape mismatch");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: Rc::new(
                self.data
                    .iter()
                    .zip(rhs.data.iter())
                    .map(|(&a, &b)| f(a, b))
                    .collect(),
            ),
        }
    }

    /// In-place `self += scale * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    // gfs-lint: hot(tape)
    pub fn add_scaled(&mut self, rhs: &Tensor, scale: f64) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        let data = Rc::make_mut(&mut self.data);
        for (a, b) in data.iter_mut().zip(rhs.data.iter()) {
            *a += scale * b;
        }
    }

    /// Sets every element to zero.
    // gfs-lint: hot(tape)
    pub fn fill_zero(&mut self) {
        Rc::make_mut(&mut self.data)
            .iter_mut()
            .for_each(|v| *v = 0.0);
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Concatenates tensors left-to-right (they must share a row count).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    #[must_use]
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols requires at least one part");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Tensor::zeros(rows, cols);
        let out_data = Rc::make_mut(&mut out.data);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "concat_cols row mismatch");
                out_data[r * cols + offset..r * cols + offset + p.cols]
                    .copy_from_slice(p.row_slice(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Frobenius norm.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Tensor {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Tensor {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        let cols = self.cols;
        &mut Rc::make_mut(&mut self.data)[r * cols + c]
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(2, 3);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matmul(&Tensor::eye(2)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0]]);
        let b = Tensor::from_rows(&[&[4.0], &[5.0], &[6.0]]);
        assert_eq!(a.matmul(&b).item(), 32.0);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_checks_dims() {
        let _ = Tensor::zeros(2, 3).matmul(&Tensor::zeros(2, 3));
    }

    /// Reference naive product for cross-checking the fast kernels.
    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                for k in 0..a.cols() {
                    out[(i, j)] += a[(i, k)] * b[(k, j)];
                }
            }
        }
        out
    }

    fn random(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::uniform(rows, cols, 1.0, &mut rng)
    }

    fn assert_close(a: &Tensor, b: &Tensor) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn blocked_matmul_matches_naive_across_size_regimes() {
        // spans the small-path/packed-path threshold and odd shapes that
        // exercise the unrolled-dot remainder handling
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (8, 8, 8), (17, 33, 9), (40, 64, 40)] {
            let a = random(m, k, 11);
            let b = random(k, n, 13);
            assert_close(&a.matmul(&b), &naive_matmul(&a, &b));
        }
    }

    #[test]
    fn matmul_add_fuses_bias() {
        let a = random(9, 31, 3);
        let b = random(31, 12, 4);
        let bias = random(1, 12, 5);
        let fused = a.matmul_add(&b, &bias);
        let mut reference = naive_matmul(&a, &b);
        for r in 0..reference.rows() {
            for c in 0..reference.cols() {
                reference[(r, c)] += bias[(0, c)];
            }
        }
        assert_close(&fused, &reference);
    }

    #[test]
    fn transposed_variants_match_explicit_transposition() {
        let a = random(7, 13, 6);
        let b = random(9, 13, 7); // for A · Bᵀ
        assert_close(&a.matmul_transb(&b), &a.matmul(&b.transposed()));
        let c = random(7, 11, 8); // for Aᵀ · C
        assert_close(&a.matmul_transa(&c), &a.transposed().matmul(&c));
    }

    #[test]
    fn into_variants_are_bit_identical_to_allocating_forms() {
        let a = random(6, 19, 21);
        let b = random(19, 5, 22);
        let bias = random(1, 5, 23);
        let mut out = Tensor::zeros(1, 1); // wrong shape on purpose: must reshape
        a.matmul_add_into(&b, None, &mut out);
        assert_eq!(out, a.matmul(&b));
        a.matmul_add_into(&b, Some(&bias), &mut out);
        assert_eq!(out, a.matmul_add(&b, &bias));
        let c = random(6, 4, 24);
        let mut acc = Tensor::zeros(19, 4);
        acc.add_matmul_transa(&a, &c);
        assert_eq!(acc, a.matmul_transa(&c));
        let mut tr = Tensor::zeros(2, 2);
        a.transpose_into(&mut tr);
        assert_eq!(tr, a.transposed());
    }

    #[test]
    fn dense_rows_no_longer_short_circuit_zeros() {
        // the old kernel skipped a == 0.0 rows; ensure zero-heavy inputs
        // still produce exact results through both paths
        let mut a = random(20, 20, 9);
        for i in 0..a.len() / 2 {
            a.as_mut_slice()[i * 2] = 0.0;
        }
        let b = random(20, 20, 10);
        assert_close(&a.matmul(&b), &naive_matmul(&a, &b));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transposed().transposed(), a);
        assert_eq!(a.transposed().shape(), (3, 2));
        assert_eq!(a.transposed()[(2, 1)], 6.0);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::row(&[1.0, -2.0]);
        assert_eq!(a.map(f64::abs).as_slice(), &[1.0, 2.0]);
        let b = Tensor::row(&[10.0, 20.0]);
        assert_eq!(a.zip(&b, |x, y| x + y).as_slice(), &[11.0, 18.0]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::row(&[1.0, 1.0]);
        a.add_scaled(&Tensor::row(&[2.0, 4.0]), 0.5);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn concat_cols_orders_parts() {
        let a = Tensor::from_rows(&[&[1.0], &[3.0]]);
        let b = Tensor::from_rows(&[&[2.0, 2.5], &[4.0, 4.5]]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row_slice(0), &[1.0, 2.0, 2.5]);
        assert_eq!(c.row_slice(1), &[3.0, 4.0, 4.5]);
    }

    #[test]
    fn sum_mean_norm() {
        let a = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.sum(), 7.0);
        assert_eq!(a.mean(), 3.5);
        assert!((a.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_respects_limit() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let t = Tensor::uniform(10, 10, 0.3, &mut rng);
        assert!(t.as_slice().iter().all(|v| v.abs() < 0.3));
    }

    #[test]
    fn index_mut_writes() {
        let mut t = Tensor::zeros(2, 2);
        t[(0, 1)] = 9.0;
        assert_eq!(t[(0, 1)], 9.0);
    }

    #[test]
    fn clone_is_shared_until_written() {
        let a = Tensor::row(&[1.0, 2.0]);
        let mut b = a.clone();
        assert!(a.is_shared() && b.is_shared());
        b.as_mut_slice()[0] = 9.0; // copy-on-write detaches b
        assert!(!a.is_shared() && !b.is_shared());
        assert_eq!(a.as_slice(), &[1.0, 2.0]);
        assert_eq!(b.as_slice(), &[9.0, 2.0]);
    }

    #[test]
    fn resize_reuse_keeps_capacity() {
        let mut t = Tensor::zeros(8, 8);
        let cap_ptr = t.as_slice().as_ptr();
        t.resize_reuse(4, 4);
        assert_eq!(t.shape(), (4, 4));
        assert_eq!(
            t.as_slice().as_ptr(),
            cap_ptr,
            "shrink must reuse the buffer"
        );
        t.resize_reuse(8, 8);
        assert_eq!(
            t.as_slice().as_ptr(),
            cap_ptr,
            "regrow within capacity must reuse"
        );
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Tensor::zeros(1, 1).to_string().is_empty());
    }
}
