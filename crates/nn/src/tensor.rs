//! Dense 2-D tensors of `f64`.
//!
//! Every quantity in the forecasting stack — sequences, embeddings, weight
//! matrices — is a row-major matrix. Vectors are represented as `1 × n` or
//! `n × 1` matrices, scalars as `1 × 1`.

use std::fmt;
use std::ops::{Index, IndexMut};

use rand::Rng;

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use gfs_nn::Tensor;
///
/// let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Tensor::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// assert_eq!(a[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor filled with a constant.
    #[must_use]
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(n, n);
        for i in 0..n {
            t[(i, i)] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Tensor { rows, cols, data }
    }

    /// Creates a tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    #[must_use]
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a `1 × n` row vector.
    #[must_use]
    pub fn row(values: &[f64]) -> Self {
        Tensor::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates an `n × 1` column vector.
    #[must_use]
    pub fn col(values: &[f64]) -> Self {
        Tensor::from_vec(values.len(), 1, values.to_vec())
    }

    /// Creates a `1 × 1` scalar tensor.
    #[must_use]
    pub fn scalar(v: f64) -> Self {
        Tensor::from_vec(1, 1, vec![v])
    }

    /// Fills the tensor with samples from `U(-limit, limit)`.
    #[must_use]
    pub fn uniform<R: Rng>(rows: usize, cols: usize, limit: f64, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The single element of a `1 × 1` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `1 × 1`.
    #[must_use]
    pub fn item(&self) -> f64 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Borrowed view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row_slice(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    #[must_use]
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let lhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, b) in out_row.iter_mut().zip(lhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    #[must_use]
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Element-wise map into a new tensor.
    #[must_use]
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise combination of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    #[must_use]
    pub fn zip(&self, rhs: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "zip shape mismatch");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += scale * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, rhs: &Tensor, scale: f64) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += scale * b;
        }
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Concatenates tensors left-to-right (they must share a row count).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    #[must_use]
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols requires at least one part");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Tensor::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "concat_cols row mismatch");
                out.data[r * cols + offset..r * cols + offset + p.cols]
                    .copy_from_slice(p.row_slice(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Frobenius norm.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Tensor {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Tensor {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(2, 3);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matmul(&Tensor::eye(2)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0]]);
        let b = Tensor::from_rows(&[&[4.0], &[5.0], &[6.0]]);
        assert_eq!(a.matmul(&b).item(), 32.0);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_checks_dims() {
        let _ = Tensor::zeros(2, 3).matmul(&Tensor::zeros(2, 3));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transposed().transposed(), a);
        assert_eq!(a.transposed().shape(), (3, 2));
        assert_eq!(a.transposed()[(2, 1)], 6.0);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::row(&[1.0, -2.0]);
        assert_eq!(a.map(f64::abs).as_slice(), &[1.0, 2.0]);
        let b = Tensor::row(&[10.0, 20.0]);
        assert_eq!(a.zip(&b, |x, y| x + y).as_slice(), &[11.0, 18.0]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::row(&[1.0, 1.0]);
        a.add_scaled(&Tensor::row(&[2.0, 4.0]), 0.5);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn concat_cols_orders_parts() {
        let a = Tensor::from_rows(&[&[1.0], &[3.0]]);
        let b = Tensor::from_rows(&[&[2.0, 2.5], &[4.0, 4.5]]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row_slice(0), &[1.0, 2.0, 2.5]);
        assert_eq!(c.row_slice(1), &[3.0, 4.0, 4.5]);
    }

    #[test]
    fn sum_mean_norm() {
        let a = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.sum(), 7.0);
        assert_eq!(a.mean(), 3.5);
        assert!((a.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_respects_limit() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let t = Tensor::uniform(10, 10, 0.3, &mut rng);
        assert!(t.as_slice().iter().all(|v| v.abs() < 0.3));
    }

    #[test]
    fn index_mut_writes() {
        let mut t = Tensor::zeros(2, 2);
        t[(0, 1)] = 9.0;
        assert_eq!(t[(0, 1)], 9.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Tensor::zeros(1, 1).to_string().is_empty());
    }
}
