//! Demand forecasting walkthrough: train OrgLinear on the four Fig. 4
//! organization archetypes, inspect the probabilistic forecasts, and show
//! how the SQA turns them into a spot quota (Eq. 9–10).
//!
//! ```text
//! cargo run --release --example demand_forecasting
//! ```

use gfs::forecast::dataset::Sample;
use gfs::prelude::*;
use gfs::scenario::{self, GdeModel};

fn main() {
    // 6 weeks of hourly demand history for the four paper organizations
    let template = scenario::org_template(6, 168, 24, 11);
    println!(
        "history: {} orgs × {} hours",
        template.num_orgs(),
        template.len_hours()
    );

    // train OrgLinear
    let cfg = TrainConfig {
        epochs: 20,
        stride: 7,
        ..TrainConfig::default()
    };
    let mut model = OrgLinear::new(&template, 5);
    let fit = model.fit(&template, &cfg);
    println!(
        "OrgLinear trained in {:.1}s over {} windows (final NLL {:.3})",
        fit.train_time_secs, fit.samples, fit.final_loss
    );

    // forecast the last held-out day for each organization
    let start = template.len_hours() - template.input_len() - template.horizon();
    println!("\nper-organization next-24h forecasts (mean ± std, p90 upper bound):");
    for org in 0..template.num_orgs() {
        let f = model.predict(&template, Sample { org, start });
        let std = f.std.clone().unwrap_or_default();
        let p90 = f.quantile(0.9);
        let actual = template.target(Sample { org, start });
        println!(
            "  {:<16} h+1: {:6.1} ± {:4.1} (p90 {:6.1}, actual {:6.1})   peak-24h p90: {:6.1}",
            template.org(org).name,
            f.mean[0],
            std[0],
            p90[0],
            actual[0],
            p90.iter().cloned().fold(0.0, f64::max),
        );
    }

    // assemble the GDE and show the quota calculation on a 512-GPU pool
    let gde = scenario::trained_gde(&template, GdeModel::OrgLinear, &cfg, 5);
    let aggregated = gde.aggregate_upper(0.9, 1);
    let cluster = Cluster::homogeneous(64, GpuModel::A100, 8);
    let capacity = cluster.capacity(None);
    let inventory = (capacity - aggregated).max(0.0);
    println!("\nEq. 9 inventory on a {capacity:.0}-GPU pool:");
    println!("  aggregated p90 HP demand Σ_o max ŷ_o|p = {aggregated:8.1} GPUs");
    println!("  f(p=0.9, H=1h)                         = {inventory:8.1} GPUs");
    println!(
        "  spot quota Q_H (η=1, all idle)         = {:8.1} GPUs",
        inventory.min(capacity)
    );

    // compare against the naive production heuristic (GFS-e)
    let naive = scenario::trained_gde(&template, GdeModel::LastWeekPeak, &TrainConfig::fast(), 5);
    let naive_agg = naive.aggregate_upper(0.9, 1);
    println!(
        "\nnaive LastWeekPeak aggregate: {naive_agg:8.1} GPUs (over-reserves {:.1} GPUs)",
        naive_agg - aggregated
    );
}
