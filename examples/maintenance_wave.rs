//! Rolling maintenance drains and scale-out under pressure, end to end:
//! the two headline scenarios of the cluster-timeline API.
//!
//! Act 1 runs a single simulation with a rolling drain wave (every node
//! drained once, 30 min notice, 2 h of maintenance) and prints the
//! per-act bookkeeping: how many gangs finished inside their notice
//! window, how many migrated gracefully, how many were forcibly
//! displaced at a deadline.
//!
//! Act 2 declares a small `gfs::lab` grid comparing the same wave with
//! and without an autoscaler buying replacement capacity mid-wave
//! (scale-out under pressure), replicated over seeds.
//!
//! ```text
//! cargo run --release --example maintenance_wave
//! GFS_WAVE_SMOKE=1 …    # tiny run (< 10 s)
//! ```

use gfs::lab::{ClusterShape, DynamicsAxis, Grid, SchedulerSpec, Threads, WorkloadAxis};
use gfs::prelude::*;

fn main() {
    let smoke = std::env::var("GFS_WAVE_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let (nodes, horizon_h, seeds): (u32, u64, Vec<u64>) = if smoke {
        (6, 8, vec![1])
    } else {
        (16, 24, vec![1, 2, 3])
    };
    let sim_horizon = (horizon_h + 72) * HOUR;

    // ---- Act 1: one run, watched closely -------------------------------
    let wave = DynamicsPlan::rolling_drain(
        nodes,
        SimTime::from_hours(2), // first drain notice
        HOUR / 2,               // one node every 30 min
        1_800,                  // 30 min of notice
        2 * HOUR,               // 2 h on the bench
    );
    println!(
        "rolling wave over {nodes} nodes: {} timeline events (validated: {})",
        wave.len(),
        wave.validate().is_ok(),
    );
    let tasks = WorkloadGenerator::new(WorkloadConfig {
        hp_tasks: if smoke { 40 } else { 200 },
        spot_tasks: if smoke { 14 } else { 60 },
        spot_scale: 2.0,
        horizon_secs: horizon_h * HOUR,
        ..WorkloadConfig::default()
    })
    .generate();
    let submitted = tasks.len();
    let mut scheduler = GfsScheduler::with_defaults();
    let report = run(
        Cluster::homogeneous(nodes, GpuModel::A100, 8),
        &mut scheduler,
        tasks,
        &SimConfig {
            dynamics: wave,
            max_time_secs: Some(sim_horizon),
            ..SimConfig::default()
        },
    );
    let finished = report.tasks.iter().filter(|t| t.completed()).count();
    println!(
        "act 1 (GFS): {finished}/{submitted} tasks done | drains {} | graceful migrations {} | \
         forced displacements {} | availability {:.4}",
        report.node_drains,
        report.migration_count(),
        report.displacement_count(),
        report.availability(),
    );

    // ---- Act 2: the same wave, with and without an autoscaler ----------
    let wave_axis = |name: &'static str, grow: bool| {
        DynamicsAxis::new(name, move |shape, _seed| {
            let wave = DynamicsPlan::rolling_drain(
                shape.node_count(),
                SimTime::from_hours(2),
                HOUR / 2,
                1_800,
                2 * HOUR,
            );
            if !grow {
                return wave;
            }
            // the autoscaler leases two replacement nodes one hour into
            // the wave and two more two hours later
            let grow = DynamicsPlan::scale_out(
                NodeTemplate {
                    model: GpuModel::A100,
                    gpus: 8,
                },
                SimTime::from_hours(3),
                2 * HOUR,
                2,
                2,
            );
            wave.merge(grow).expect("disjoint histories compose")
        })
    };
    let grid = Grid::new()
        .schedulers([SchedulerSpec::yarn_cs(), SchedulerSpec::fgd()])
        .shape(ClusterShape::a100(nodes, 8))
        .workload(WorkloadAxis::generated(
            "steady",
            WorkloadConfig {
                hp_tasks: if smoke { 40 } else { 200 },
                spot_tasks: if smoke { 14 } else { 60 },
                spot_scale: 2.0,
                horizon_secs: horizon_h * HOUR,
                ..WorkloadConfig::default()
            },
        ))
        .dynamics([
            DynamicsAxis::none(),
            wave_axis("wave", false),
            wave_axis("wave+grow", true),
        ])
        .seeds(seeds)
        .sim(SimConfig {
            max_time_secs: Some(sim_horizon),
            ..SimConfig::default()
        });
    let result = grid.run(Threads::Auto);
    println!(
        "{}",
        result.report.render_table(&[
            "availability",
            "node_drains",
            "migration_count",
            "displacement_count",
            "added_gpus",
            "hp_p99_jct_s",
            "spot_mean_jqt_s",
        ])
    );
}
