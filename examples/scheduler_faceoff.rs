//! Scheduler face-off: GFS vs the four baselines of §4.4 on the same
//! medium-spot workload, declared as a `gfs::lab` grid (no hand-rolled
//! cluster/workload assembly) and printed as a Table 5-style comparison.
//!
//! ```text
//! cargo run --release --example scheduler_faceoff
//! ```

use gfs::lab::{ClusterShape, Grid, SchedulerSpec, Threads, WorkloadAxis};
use gfs::prelude::*;
use gfs::scenario;

fn main() {
    let shape = ClusterShape::a100(32, 8);
    println!(
        "medium-spot workload on {} GPUs over 72h, all schedulers in parallel\n",
        shape.capacity_gpus()
    );

    let medium = WorkloadAxis::generated_sized(
        "medium-spot",
        WorkloadConfig {
            horizon_secs: 3 * 24 * HOUR,
            spot_scale: 2.0, // medium spot workload (§4.1)
            ..WorkloadConfig::default()
        },
        0.6,
        0.15,
    );
    let params = GfsParams::builder()
        .eta_bounds(0.1, 1.5)
        .build()
        .expect("valid params");
    let grid = Grid::new()
        .schedulers(SchedulerSpec::baselines())
        .scheduler(scenario::gfs_spec(3, 0.6))
        .shape(shape)
        .workload(medium)
        .params([gfs::lab::ParamsAxis {
            name: "eta<=1.5".into(),
            params,
        }])
        .seeds([9])
        .sim(SimConfig {
            max_time_secs: Some(8 * 24 * HOUR),
            ..SimConfig::default()
        });

    let result = grid.run(Threads::Auto);
    println!(
        "{}",
        result.report.render_table(&[
            "hp_mean_jct_s",
            "hp_mean_jqt_s",
            "spot_mean_jct_s",
            "spot_mean_jqt_s",
            "eviction_rate",
        ])
    );
}
