//! Scheduler face-off: GFS vs the four baselines of §4.4 on the same
//! medium-spot workload, printing a Table 5-style comparison.
//!
//! ```text
//! cargo run --release --example scheduler_faceoff
//! ```

use gfs::prelude::*;
use gfs::scenario;

fn simulate(name: &str, scheduler: &mut dyn Scheduler, tasks: &[TaskSpec]) -> (String, SimReport) {
    let cluster = Cluster::homogeneous(32, GpuModel::A100, 8);
    let report = run(
        cluster,
        scheduler,
        tasks.to_vec(),
        &SimConfig {
            max_time_secs: Some(8 * 24 * HOUR),
            ..SimConfig::default()
        },
    );
    (name.to_string(), report)
}

fn main() {
    let cluster_capacity = 32.0 * 8.0;
    let cfg = WorkloadConfig {
        horizon_secs: 3 * 24 * HOUR,
        spot_scale: 2.0, // medium spot workload (§4.1)
        seed: 9,
        ..WorkloadConfig::default()
    }
    .sized_for(cluster_capacity, 0.6, 0.15);
    let tasks = WorkloadGenerator::new(cfg).generate();
    println!(
        "medium-spot workload: {} tasks on {} GPUs over 72h\n",
        tasks.len(),
        cluster_capacity
    );

    let mut results = vec![simulate("YARN-CS", &mut YarnCs::new(), &tasks)];
    results.push(simulate("Chronus", &mut Chronus::new(), &tasks));
    results.push(simulate("Lyra", &mut Lyra::new(), &tasks));
    results.push(simulate("FGD", &mut Fgd::new(), &tasks));
    let params = GfsParams::builder().eta_bounds(0.1, 1.5).build().expect("valid params");
    let mut gfs = scenario::gfs_full(params, 3, 9, 0.6 * cluster_capacity);
    results.push(simulate("GFS", &mut gfs, &tasks));

    println!(
        "{:<9} | {:>11} {:>9} | {:>11} {:>9} {:>7}",
        "sched", "HP JCT(s)", "HP JQT(s)", "spot JCT(s)", "JQT(s)", "e(%)"
    );
    println!("{}", "-".repeat(68));
    for (name, r) in &results {
        println!(
            "{:<9} | {:>11.1} {:>9.1} | {:>11.1} {:>9.1} {:>7.2}",
            name,
            r.mean_jct(Priority::Hp),
            r.mean_jqt(Priority::Hp),
            r.mean_jct(Priority::Spot),
            r.mean_jqt(Priority::Spot),
            r.eviction_rate() * 100.0,
        );
    }
}
