//! Spot-market lifecycle demo: watch the SQA quota, the safety coefficient
//! `η` and spot evictions evolve hour by hour through a demand surge —
//! the Fig. 1 scenario that motivates dynamic quotas.
//!
//! The scenario is assembled as a single-cell `gfs::lab` grid (custom
//! trace source + default-GFS scheduler spec) with `keep_reports` so the
//! raw [`SimReport`] stays available for the hourly timeline below.
//!
//! ```text
//! cargo run --release --example spot_market
//! ```

use gfs::lab::{ClusterShape, Grid, Threads, WorkloadAxis};
use gfs::prelude::*;
use gfs::scenario;
use gfs_types::CheckpointPlan;

/// Builds a surge workload: calm HP background, then an HP burst between
/// hours 8–10 that squeezes the spot pool.
fn surge_workload() -> Vec<TaskSpec> {
    let mut tasks = Vec::new();
    let mut id = 0u64;
    let mut push = |tasks: &mut Vec<TaskSpec>, priority, gpus: u32, submit_h: u64, dur_h: u64| {
        id += 1;
        let mut b = TaskSpec::builder(id)
            .priority(priority)
            .gpus_per_pod(GpuDemand::whole(gpus))
            .duration_secs(dur_h * HOUR)
            .submit_at(SimTime::from_secs(submit_h * HOUR + (id * 37) % HOUR))
            .checkpoint(CheckpointPlan::Periodic { interval: 1_800 });
        if priority == Priority::Spot {
            b = b.guarantee_secs(HOUR);
        }
        tasks.push(b.build().expect("valid task"));
    };

    for h in 0..24 {
        // steady HP trickle: ~24 GPUs/hour for 2-hour jobs
        for _ in 0..3 {
            push(&mut tasks, Priority::Hp, 8, h, 2);
        }
        // steady spot interest: long 4-GPU batch jobs
        for _ in 0..4 {
            push(&mut tasks, Priority::Spot, 4, h, 6);
        }
    }
    // the surge: 3× HP demand in hours 8-10
    for h in 8..10 {
        for _ in 0..8 {
            push(&mut tasks, Priority::Hp, 8, h, 3);
        }
    }
    tasks.sort_by_key(|t| (t.submit_at, t.id));
    tasks
}

fn main() {
    let grid = Grid::new()
        .scheduler(scenario::gfs_no_gde_spec())
        .shape(ClusterShape::a100(16, 8).named("surge-pool")) // 128 GPUs
        .workload(WorkloadAxis::new("hp-surge", |_, _| surge_workload()))
        .sim(SimConfig {
            max_time_secs: Some(3 * 24 * HOUR),
            ..SimConfig::default()
        })
        .keep_reports(true);
    let result = grid.run(Threads::Auto);
    let report = &result.sim_reports[0][0];
    println!("surge workload: {} tasks on 128 GPUs\n", report.tasks.len());

    // hourly picture: allocation + evictions
    let ev_ratio = report.hourly_eviction_ratio();
    println!("hour | alloc%  hp%  spot% | evictions");
    for s in report.alloc_samples.iter().take(26) {
        let h = s.at.as_hours() as usize;
        let evs = report
            .eviction_times
            .iter()
            .filter(|t| t.as_hours() as usize == h)
            .count();
        let marker = if (8..10).contains(&h) {
            "  <-- HP surge"
        } else {
            ""
        };
        println!(
            "{:>4} | {:>5.1} {:>5.1} {:>5.1} | {:>3} ({:.0}% of spot events){}",
            h,
            s.total * 100.0,
            s.hp * 100.0,
            s.spot * 100.0,
            evs,
            ev_ratio.get(h).copied().unwrap_or(0.0) * 100.0,
            marker
        );
    }

    let summary = &result.report.cells[0].runs[0];
    println!(
        "\noverall: spot eviction rate {:.1}%, spot mean JQT {:.0}s, HP mean JQT {:.0}s",
        summary.eviction_rate * 100.0,
        summary.spot_mean_jqt_s,
        summary.hp_mean_jqt_s,
    );
    println!("evictions cluster in the surge window, and the SQA quota recovers afterwards.");
}
