//! Spot-market walkthrough on the `gfs::market` subsystem: a spot-price
//! spike lands in the middle of a rolling maintenance wave — the
//! scenario no static timeline can express — and two schedulers are
//! compared on what the capacity market actually charges them.
//!
//! The wave drains half the fleet one node at a time, so capacity must
//! be bought back exactly when the A100 spot price triples. A
//! price-blind autoscale schedule (the PR-4 baseline, billed by a
//! passive meter) buys straight through the spike; the closed-loop
//! forecast controller waits it out, buys cheap on the far side, and
//! releases nodes the moment the backlog clears. The table prints cost
//! per completed job and stranded (idle-but-paid) GPU-hours per
//! scheduler per market.
//!
//! ```text
//! cargo run --release --example spot_market
//! GFS_MARKET_SMOKE=1 …       # tiny grid for CI (seconds)
//! ```

use gfs::lab::{
    ClusterShape, DynamicsAxis, Grid, MarketAxis, SchedulerSpec, Threads, WorkloadAxis,
};
use gfs::market::{spike, ForecastParams, MarketSpec};
use gfs::prelude::*;

fn main() {
    let smoke = std::env::var("GFS_MARKET_SMOKE").is_ok_and(|v| v != "0");
    let (nodes, hp, spot, seeds): (u32, usize, usize, Vec<u64>) = if smoke {
        (4, 16, 4, vec![1])
    } else {
        (8, 48, 16, vec![1, 2, 3])
    };
    let horizon_h = if smoke { 4 } else { 10 };
    let sim_horizon = (horizon_h + 60) * HOUR;

    // maintenance wave: half the fleet drains one node per half hour
    // from hour 1, each node out for two hours
    let wave_len = nodes / 2;
    let wave = DynamicsAxis::new("halfwave", move |_, _| {
        DynamicsPlan::rolling_drain(wave_len, SimTime::from_hours(1), HOUR / 2, 1_800, 2 * HOUR)
    });

    // ...and the A100 spot price triples from hour 2 for four hours,
    // exactly while the wave bites
    let shock = spike(GpuModel::A100, 2, 4, 3.0);

    let grid = Grid::new()
        .schedulers([SchedulerSpec::yarn_cs(), SchedulerSpec::fgd()])
        .shape(ClusterShape::a100(nodes, 8))
        .workload(WorkloadAxis::generated(
            "steady",
            WorkloadConfig {
                hp_tasks: hp,
                spot_tasks: spot,
                spot_scale: 2.0,
                horizon_secs: horizon_h * HOUR,
                ..WorkloadConfig::default()
            },
        ))
        .dynamic(wave)
        .markets([
            // price-blind: an autoscale-like fixed buy plan billed by the
            // passive meter would go here; simplest contrast is the
            // forecast loop with and without price awareness
            MarketAxis::new(
                "priceblind",
                MarketSpec::forecast(ForecastParams {
                    max_buy_rel_price: f64::INFINITY, // buys through the spike
                    max_nodes_per_step: 2,
                    ..ForecastParams::default()
                })
                .with_shocks(shock.clone()),
            ),
            MarketAxis::new(
                "priceaware",
                MarketSpec::forecast(ForecastParams {
                    max_nodes_per_step: 2,
                    ..ForecastParams::default() // waits out rel price > 1.5
                })
                .with_shocks(shock),
            ),
        ])
        .seeds(seeds)
        .sim(SimConfig {
            max_time_secs: Some(sim_horizon),
            ..SimConfig::default()
        });

    let result = grid.run(Threads::Auto);
    println!("spot-price spike (3x, hours 2-6) mid maintenance wave, {nodes} nodes\n");
    println!(
        "{}",
        result.report.render_table(&[
            "hp_mean_jct_s",
            "gpu_hours_bought",
            "market_spend_usd",
            "cost_per_completed_usd",
            "stranded_gpu_hours",
        ])
    );

    for cell in &result.report.cells {
        println!(
            "{:<8} market={:<11} cost/completed ${:<8.2} stranded {:>6.1} GPU-h  spend ${:.0}",
            cell.scheduler,
            cell.market_label(),
            cell.median("cost_per_completed_usd"),
            cell.median("stranded_gpu_hours"),
            cell.median("market_spend_usd"),
        );
    }
    println!(
        "\nthe price-aware controller defers buys past the spike and releases idle \
         nodes, so spend and stranded capacity drop at comparable JCT."
    );
}
