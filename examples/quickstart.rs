//! Quickstart: schedule a day of mixed HP/spot work on a 128-GPU pool with
//! the full GFS framework and print the §4.2 metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gfs::prelude::*;
use gfs::scenario;

fn main() {
    // 1. Cluster: 16 × 8-GPU A100 nodes.
    let cluster = Cluster::homogeneous(16, GpuModel::A100, 8);

    // 2. Workload: one day, calibrated to the paper's Table 3 task mix,
    //    sized to ~60 % HP load + ~30 % spot load.
    let cfg = WorkloadConfig {
        horizon_secs: 24 * HOUR,
        seed: 42,
        ..WorkloadConfig::default()
    }
    .sized_for(cluster.capacity(None), 0.6, 0.3);
    let tasks = WorkloadGenerator::new(cfg).generate();
    let hp = tasks.iter().filter(|t| t.priority.is_hp()).count();
    println!(
        "workload: {} tasks ({hp} HP / {} spot)",
        tasks.len(),
        tasks.len() - hp
    );

    // 3. GFS with an OrgLinear demand estimator trained on 3 weeks of
    //    synthetic organization history.
    let expected_hp = 0.6 * 128.0;
    let mut gfs = scenario::gfs_full(GfsParams::default(), 3, 7, expected_hp);

    // 4. Simulate.
    let report = run(
        cluster,
        &mut gfs,
        tasks,
        &SimConfig {
            max_time_secs: Some(4 * 24 * HOUR),
            ..SimConfig::default()
        },
    );

    // 5. Report.
    println!("\n=== results (GFS) ===");
    println!("makespan                : {}", report.makespan);
    println!(
        "HP   mean JCT / JQT     : {:>9.1}s / {:>7.1}s",
        report.mean_jct(Priority::Hp),
        report.mean_jqt(Priority::Hp)
    );
    println!(
        "spot mean JCT / JQT     : {:>9.1}s / {:>7.1}s",
        report.mean_jct(Priority::Spot),
        report.mean_jqt(Priority::Spot)
    );
    println!(
        "spot eviction rate      : {:>8.2}%",
        report.eviction_rate() * 100.0
    );
    println!(
        "mean allocation rate    : {:>8.2}%",
        report.mean_allocation_rate() * 100.0
    );
    println!(
        "completion (HP / spot)  : {:>6.1}% / {:>5.1}%",
        report.completion_rate(Priority::Hp) * 100.0,
        report.completion_rate(Priority::Spot) * 100.0
    );
}
