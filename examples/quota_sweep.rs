//! Spot-price/quota sensitivity sweep: how the SQA's guarantee knobs
//! trade spot admission (allocation, queueing) against eviction risk.
//!
//! One `gfs::lab` grid sweeps a [`ParamsAxis`] list over the three quota
//! levers of Table 4 — the guarantee horizon `H` (`guarantee_hours`), the
//! guarantee rate `p` and the `η` clamp range (`eta_bounds`) — for the
//! full GFS framework (trained GDE per run), replicated over seeds and
//! emitted as an aggregated lab table plus JSON.
//!
//! ```text
//! cargo run --release --example quota_sweep
//! GFS_QUOTA_SMOKE=1 …    # tiny grid (< 30 s)
//! GFS_QUOTA_JSON=1  …    # dump the aggregated GridReport JSON to stdout
//! ```

use gfs::lab::{ClusterShape, Grid, ParamsAxis, Threads, WorkloadAxis};
use gfs::prelude::*;
use gfs::scenario;

fn axis(name: &str, params: GfsParams) -> ParamsAxis {
    ParamsAxis {
        name: name.to_string(),
        params,
    }
}

fn main() {
    let smoke = std::env::var("GFS_QUOTA_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let (nodes, horizon_h, seeds): (u32, u64, Vec<u64>) = if smoke {
        (8, 12, vec![1])
    } else {
        (16, 48, vec![1, 2, 3])
    };

    // the three quota levers, each swept around the Table 4 default
    let sweep = vec![
        axis("default", GfsParams::default()),
        // longer guarantee horizon: quota protects spot tasks for 4 h
        axis(
            "H=4",
            GfsParams::builder()
                .guarantee_hours(4)
                .build()
                .expect("valid"),
        ),
        // a looser guarantee (p = 0.7): more inventory sold to spot
        axis(
            "p=0.7",
            GfsParams::builder()
                .guarantee_rate(0.7)
                .build()
                .expect("valid"),
        ),
        // a stricter guarantee (p = 0.99): spot throttled hard
        axis(
            "p=0.99",
            GfsParams::builder()
                .guarantee_rate(0.99)
                .build()
                .expect("valid"),
        ),
        // conservative η clamp: the feedback loop can never over-admit
        axis(
            "eta<=1",
            GfsParams::builder()
                .eta_bounds(0.1, 1.0)
                .build()
                .expect("valid"),
        ),
    ];

    let grid = Grid::new()
        .scheduler(scenario::gfs_spec(2, 0.6))
        .shape(ClusterShape::a100(nodes, 8))
        .workload(WorkloadAxis::generated_sized(
            "medium-spot",
            WorkloadConfig {
                horizon_secs: horizon_h * HOUR,
                spot_scale: 2.0,
                ..WorkloadConfig::default()
            },
            0.60,
            0.15,
        ))
        .params(sweep)
        .seeds(seeds)
        .sim(SimConfig {
            max_time_secs: Some((horizon_h + 96) * HOUR),
            ..SimConfig::default()
        });

    let result = grid.run(Threads::Auto);
    println!(
        "{}",
        result.report.render_table(&[
            "spot_completion",
            "spot_mean_jqt_s",
            "spot_p99_jqt_s",
            "eviction_rate",
            "mean_alloc_rate",
            "hp_p99_jct_s",
        ])
    );
    println!(
        "{} cells × {} seeds — quota levers: H, p, eta_bounds (Table 4)",
        result.report.cells.len(),
        result.report.cells.first().map_or(0, |c| c.seeds.len()),
    );
    if std::env::var("GFS_QUOTA_JSON").is_ok_and(|v| v != "0" && !v.is_empty()) {
        println!("{}", result.report.to_json());
    }
}
