//! Kill the cluster controller mid-maintenance-wave, then bring a
//! replacement up from its last snapshot plus the write-ahead journal —
//! and prove the recovered run is bit-identical to one that never
//! crashed.
//!
//! The script mirrors a production failover:
//!
//! 1. **Golden run** — a GFS-scheduled service admits a workload and a
//!    rolling drain wave, journals every admission, checkpoints every
//!    `CADENCE` steps, takes a late admission wave mid-run, and runs to
//!    completion. Its report hash and final state hash are the truth.
//! 2. **Crash** — the identical service is killed a few steps after the
//!    late wave lands, so the last checkpoint predates it: the journal
//!    suffix carries real, unsnapshotted admissions.
//! 3. **Recovery** — a fresh controller restores the checkpoint,
//!    replays the journal suffix (skipping records the snapshot already
//!    covers), and drives the run to the end.
//!
//! The example exits non-zero unless both fingerprints match exactly.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use gfs::prelude::*;
use gfs::sim::{report_hash, ClusterService, ServiceSnapshot};

/// Checkpoint cadence (steps). The crash lands after `LATE_AT` but
/// before the next cadence boundary, so recovery must replay a suffix.
const CADENCE: u64 = 10;
/// Step count at which the second admission wave arrives.
const LATE_AT: u64 = 12;
/// Step count at which the victim controller is killed.
const CRASH_AT: u64 = 17;

fn fresh_scheduler() -> Box<dyn Scheduler> {
    Box::new(GfsScheduler::with_defaults())
}

fn build_service() -> (ClusterService, Vec<TaskSpec>) {
    let nodes = 8u32;
    let wave = DynamicsPlan::rolling_drain(
        nodes,
        SimTime::from_hours(2), // first drain notice
        HOUR / 2,               // one node every 30 min
        1_800,                  // 30 min of notice
        2 * HOUR,               // 2 h on the bench
    );
    let mut tasks = WorkloadGenerator::new(WorkloadConfig {
        hp_tasks: 36,
        spot_tasks: 12,
        spot_scale: 2.0,
        horizon_secs: 10 * HOUR,
        ..WorkloadConfig::default()
    })
    .generate();
    // the trailing quarter of the trace arrives later, over the wire
    let late = tasks.split_off(tasks.len() - tasks.len() / 4);

    let mut svc = ClusterService::new(
        Cluster::homogeneous(nodes, GpuModel::A100, 8),
        SimConfig {
            max_time_secs: Some(72 * HOUR),
            ..SimConfig::default()
        },
    );
    svc.enable_journal();
    svc.admit_tasks(tasks);
    svc.admit_plan(&wave);
    svc.start();
    (svc, late)
}

/// Drives a service forward, admitting the late wave at `LATE_AT` and
/// checkpointing every `CADENCE` steps. Stops early at `crash_at`;
/// returns the last checkpoint (snapshot JSON) taken before the stop.
fn drive(
    svc: &mut ClusterService,
    sched: &mut dyn Scheduler,
    late: &mut Option<Vec<TaskSpec>>,
    crash_at: Option<u64>,
) -> Option<String> {
    let mut checkpoint = None;
    loop {
        if let Some(wave) = late.take_if(|_| svc.steps() >= LATE_AT) {
            svc.admit_tasks(wave);
        }
        if crash_at == Some(svc.steps()) {
            return checkpoint; // the controller dies here
        }
        if !svc.step(sched) {
            match late.take() {
                // the run drained before the wave arrived: admit it now
                Some(wave) => svc.admit_tasks(wave),
                None => return checkpoint,
            }
        }
        if svc.steps().is_multiple_of(CADENCE) {
            checkpoint = Some(svc.snapshot(sched).to_json());
        }
    }
}

fn main() {
    // ---- Act 1: the golden run, never interrupted ----------------------
    let (mut golden, late) = build_service();
    let mut sched = fresh_scheduler();
    drive(&mut golden, sched.as_mut(), &mut Some(late), None);
    let golden_state = golden.snapshot(sched.as_ref()).state_hash();
    let golden_report = report_hash(&golden.finish());
    println!("golden   : report {golden_report:016x}  state {golden_state:016x}");

    // ---- Act 2: the same run, controller killed mid-wave ---------------
    let (mut victim, late) = build_service();
    let mut sched = fresh_scheduler();
    let checkpoint = drive(&mut victim, sched.as_mut(), &mut Some(late), Some(CRASH_AT));
    let journal = victim
        .journal()
        .expect("journal enabled")
        .text()
        .to_string();
    drop(victim); // the process is gone; only the checkpoint + log survive
    println!(
        "crash    : killed at step {CRASH_AT} (checkpoint at step {}, journal {} bytes)",
        CADENCE * (CRASH_AT / CADENCE),
        journal.len(),
    );

    // ---- Act 3: a replacement controller takes over --------------------
    let mut sched = fresh_scheduler();
    let snap = ServiceSnapshot::from_json(&checkpoint.expect("one cadence passed"))
        .expect("checkpoint parses");
    let mut recovered = ClusterService::restore(snap, sched.as_mut()).expect("checkpoint restores");
    recovered.enable_journal();
    let replay = recovered.replay_journal(&journal, sched.as_mut());
    assert!(
        replay.rejected.is_none(),
        "journal replay rejected a record: {:?}",
        replay.rejected
    );
    println!(
        "recovery : {} records already in the checkpoint, {} replayed from the journal suffix",
        replay.skipped, replay.applied,
    );
    // the late wave was journaled before the crash, so replay re-admits
    // it; the recovered controller only has to drive the run home
    drive(&mut recovered, sched.as_mut(), &mut None, None);
    let recovered_state = recovered.snapshot(sched.as_ref()).state_hash();
    let recovered_report = report_hash(&recovered.finish());
    println!("recovered: report {recovered_report:016x}  state {recovered_state:016x}");

    assert_eq!(golden_report, recovered_report, "report hashes must match");
    assert_eq!(golden_state, recovered_state, "state hashes must match");
    println!("verdict  : recovered run is bit-identical to the golden run");
}
