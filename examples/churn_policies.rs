//! Churn-aware placement under correlated rack failures and a rolling
//! maintenance wave: what failure-domain spreading, reliability scoring
//! and drain avoidance buy, measured like for like.
//!
//! The cluster's racks split into two flaky blast radii (3 h MTBF as
//! correlated units) and two stable ones, while a maintenance wave walks
//! through the fleet mid-run. A `gfs::lab` grid compares naive placement
//! against the full churn-aware policy for both the bare PTS engine and
//! the GFS framework, replicated over seeds, and prints how
//! displacement counts, displaced-JCT and migration counts move.
//!
//! ```text
//! cargo run --release --example churn_policies
//! GFS_POLICY_SMOKE=1 …    # tiny run (< 10 s)
//! ```

use gfs::lab::{ClusterShape, DynamicsAxis, Grid, PolicyAxis, Threads, UniformTrace, WorkloadAxis};
use gfs::prelude::*;
use gfs::scenario;

const RACK: u32 = 4;

fn main() {
    let smoke = std::env::var("GFS_POLICY_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let (nodes, horizon_h, seeds): (u32, u64, Vec<u64>) = if smoke {
        (8, 8, vec![1])
    } else {
        (16, 24, vec![1, 2, 3, 4])
    };
    let sim_horizon = (horizon_h + 48) * HOUR;

    // flaky racks + a rolling maintenance wave, composed into one timeline
    let dynamics = DynamicsAxis::new("flaky+wave", move |shape, seed| {
        let racks = FailureDomain::racks(shape.node_count(), RACK);
        let flaky = DynamicsPlan::correlated(
            &racks[..racks.len() / 2],
            2.0 * HOUR as f64,
            HOUR as f64 / 2.0,
            sim_horizon,
            seed,
        );
        // the wave services the flaky half of the fleet (nodes 0..n/2),
        // which is exactly where maintenance crews spend their time
        let wave = DynamicsPlan::rolling_drain(
            shape.node_count() / 2,
            SimTime::from_hours(horizon_h / 2),
            HOUR / 2,
            1_800,
            HOUR,
        );
        // merge can reject a wave drain colliding with a failure window;
        // fall back to the tolerant path for those seeds (events on a
        // down node are engine no-ops)
        flaky.clone().merge(wave.clone()).unwrap_or_else(|_| {
            DynamicsPlan::new_unchecked(
                flaky
                    .events()
                    .iter()
                    .chain(wave.events())
                    .copied()
                    .collect(),
            )
        })
    });

    let grid = Grid::new()
        .schedulers([scenario::pts_spec(), scenario::gfs_no_gde_spec()])
        .shape(ClusterShape::a100(nodes, 8).racked(RACK))
        // a controlled-duration trace: every task shares one baseline, so
        // the displaced-JCT comparison measures placement overhead, not
        // which durations happened to get hit (see WorkloadAxis::uniform)
        .workload(WorkloadAxis::uniform(
            "uniform",
            UniformTrace {
                hp_tasks: if smoke { 16 } else { 44 },
                spot_tasks: if smoke { 4 } else { 8 },
                ..UniformTrace::default()
            },
        ))
        .dynamic(dynamics)
        .policies([PolicyAxis::naive(), PolicyAxis::churn_aware()])
        .seeds(seeds)
        .sim(SimConfig {
            max_time_secs: Some(sim_horizon),
            ..SimConfig::default()
        });

    let result = grid.run(Threads::Auto);
    println!(
        "{}",
        result.report.render_table(&[
            "displacement_count",
            "displaced_mean_jct_s",
            "migration_count",
            "node_drains",
            "hp_p99_jct_s",
            "availability",
        ])
    );

    println!("churn-aware vs naive (median over seeds):");
    for sched in ["PTS", "GFS (no GDE)"] {
        let shape_label = format!("{nodes}n");
        let cell = |policy: &str| {
            result
                .report
                .cell_full(
                    sched,
                    &shape_label,
                    "uniform",
                    "flaky+wave",
                    policy,
                    "default",
                )
                .expect("cell exists")
        };
        let (naive, aware) = (cell("naive"), cell("churn-aware"));
        let delta = |metric: &str| {
            let (n, a) = (naive.median(metric), aware.median(metric));
            let pct = if n > 0.0 { (n - a) / n * 100.0 } else { 0.0 };
            (n, a, pct)
        };
        let (nd, ad, pd) = delta("displacement_count");
        let (nj, aj, pj) = delta("displaced_mean_jct_s");
        let (nm, am, pm) = delta("migration_count");
        println!("  {sched}:");
        println!("    displacements     {nd:>9.1} -> {ad:>9.1}  ({pd:+.0}% fewer)");
        println!("    displaced JCT (s) {nj:>9.0} -> {aj:>9.0}  ({pj:+.0}% lower)");
        println!("    migrations        {nm:>9.1} -> {am:>9.1}  ({pm:+.0}% fewer)");
    }
}
