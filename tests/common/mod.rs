//! Helpers shared by the golden-pinning integration tests.

/// FNV-1a over a canonical JSON encoding — the workspace's golden-pin
/// hash. Keep the constants here only; every pinned test goes through
/// this one implementation.
#[must_use]
pub fn fnv1a(json: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
