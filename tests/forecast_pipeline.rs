//! Integration of the forecasting stack with the scenario glue: training
//! on generated org demand and feeding the SQA quota computation.

use gfs::forecast::dataset::Sample;
use gfs::prelude::*;
use gfs::scenario::{org_template, org_template_scaled, trained_gde, GdeModel};

#[test]
fn orglinear_beats_naive_peak_on_org_demand() {
    let data = org_template(6, 168, 24, 17);
    let cfg = TrainConfig {
        epochs: 12,
        stride: 7,
        ..TrainConfig::default()
    };
    let mut org = OrgLinear::new(&data, 3);
    let org_scores = gfs::forecast::evaluate(&mut org, &data, &cfg);
    let mut peak = LastWeekPeak::new();
    let peak_scores = gfs::forecast::evaluate(&mut peak, &data, &cfg);
    assert!(
        org_scores.mae < peak_scores.mae,
        "OrgLinear MAE {:.2} must beat LastWeekPeak {:.2}",
        org_scores.mae,
        peak_scores.mae
    );
    assert!(org_scores.maqe90.is_some(), "OrgLinear is probabilistic");
}

#[test]
fn gde_quota_pipeline_produces_sane_inventory() {
    let template = org_template_scaled(3, 168, 4, 5, Some(120.0));
    let mut cfg = TrainConfig::fast();
    cfg.epochs = 8;
    cfg.stride = 7;
    let gde = trained_gde(&template, GdeModel::OrgLinear, &cfg, 5);
    let agg = gde.aggregate_upper(0.9, 1);
    // p90 aggregate must sit near-but-above the scaled mean of 120
    assert!(agg > 90.0 && agg < 240.0, "aggregate p90 demand {agg}");
    let cluster = Cluster::homogeneous(32, GpuModel::A100, 8); // 256 GPUs
    let mut sqa = gfs::core::SpotQuotaAllocator::new(GfsParams::default());
    sqa.update(SimTime::from_secs(300), &cluster, agg);
    assert!(
        sqa.quota() > 0.0,
        "a half-loaded forecast must leave spot inventory"
    );
    assert!(sqa.quota() <= 256.0);
}

#[test]
fn forecast_quantiles_are_ordered() {
    let data = org_template(4, 168, 24, 8);
    let mut cfg = TrainConfig::fast();
    cfg.epochs = 6;
    let mut m = OrgLinear::new(&data, 2);
    m.fit(&data, &cfg);
    let f = m.predict(&data, Sample { org: 1, start: 200 });
    let q50 = f.quantile(0.5);
    let q90 = f.quantile(0.9);
    let q99 = f.quantile(0.99);
    for i in 0..q50.len() {
        assert!(
            q50[i] <= q90[i] && q90[i] <= q99[i],
            "quantile crossing at {i}"
        );
    }
}

#[test]
fn trace_round_trip_preserves_workload() {
    let tasks = WorkloadGenerator::new(WorkloadConfig {
        hp_tasks: 50,
        spot_tasks: 10,
        seed: 9,
        ..WorkloadConfig::default()
    })
    .generate();
    let tf = gfs::trace::TraceFile::new("integration", tasks.clone());
    let mut buf = Vec::new();
    tf.write_json(&mut buf).expect("serialize");
    let back = gfs::trace::TraceFile::read_json(buf.as_slice()).expect("parse");
    assert_eq!(back.tasks, tasks);
}
