//! Determinism, pinning and *effectiveness* of the placement-policy axis
//! — the acceptance gate of churn-aware placement: under a pinned
//! correlated-failure grid whose blast radii have heterogeneous failure
//! rates (two flaky racks, two stable ones — the fleet reality the
//! reliability score exists for), domain-spread + reliability-scored
//! placement must *strictly reduce* displacement counts and displaced-JCT
//! against naive placement for both the bare PTS engine and the GFS
//! framework, while the grid stays byte-identical for any worker count.

mod common;

use common::fnv1a;
use gfs::lab::{ClusterShape, DynamicsAxis, Grid, PolicyAxis, Threads, WorkloadAxis};
use gfs::prelude::*;
use gfs::scenario;

const RACK: u32 = 4;
const SIM_HORIZON: u64 = 72 * HOUR;

/// A controlled-duration trace: HP tasks of one fixed length arriving on
/// a seeded jittered cadence over 24 h (every sixth a two-pod gang, so
/// the spread term is exercised), plus a handful of checkpointed spot
/// tasks. Constant durations matter: with a log-normal body, "which tasks
/// end up displaced" correlates with duration and the displaced-JCT mean
/// measures set composition instead of placement quality. Here every
/// displaced task shares one baseline, so the metric isolates exactly the
/// overhead (restarts, repair waits, repeat displacements) a placement
/// policy can actually influence.
fn uniform_workload() -> WorkloadAxis {
    WorkloadAxis::uniform("uniform", gfs::lab::UniformTrace::default())
}

/// 2 schedulers × 1 racked shape × 1 flaky-rack timeline × 3 policies ×
/// 4 seeds = 6 cells / 24 runs. Racks 0–1 churn as units (90 min MTBF
/// per rack, 30 min repair — a meat grinder); racks 2–3 never fail, so
/// failure history is a genuine signal, not noise. Submissions span 24 h
/// — most placements happen *after* the flaky racks have shown their
/// colours, which is exactly the regime the reliability score exists
/// for.
fn policy_grid() -> Grid {
    Grid::new()
        .schedulers([scenario::pts_spec(), scenario::gfs_no_gde_spec()])
        .shape(ClusterShape::a100(16, 8).racked(RACK))
        .workload(uniform_workload())
        .dynamic(DynamicsAxis::new("flakyracks", |shape, seed| {
            let racks = FailureDomain::racks(shape.node_count(), RACK);
            DynamicsPlan::correlated(
                &racks[..2],
                1.5 * HOUR as f64,
                HOUR as f64 / 2.0,
                SIM_HORIZON,
                seed,
            )
        }))
        .policies([
            PolicyAxis::naive(),
            PolicyAxis::domain_spread(),
            PolicyAxis::churn_aware(),
        ])
        .seeds([1, 2, 3, 4])
        .sim(SimConfig {
            max_time_secs: Some(SIM_HORIZON),
            ..SimConfig::default()
        })
}

#[test]
fn policy_grid_identical_across_thread_counts() {
    let grid = policy_grid();
    let serial = grid.run(Threads::Fixed(1)).report.to_json();
    let parallel = grid.run(Threads::Fixed(8)).report.to_json();
    assert_eq!(
        serial, parallel,
        "thread count leaked into a policy grid — placement policies must be \
         pure functions of (cluster state, task, time)"
    );
    let report = gfs::lab::GridReport::from_json(&serial).expect("round-trips");
    assert_eq!(report.cells.len(), 6);
    assert!(report.cells.iter().all(|c| c.seeds == [1, 2, 3, 4]));
    // the policy label round-trips (and the non-naive rows carry it)
    assert_eq!(
        report
            .cells
            .iter()
            .filter(|c| c.policy_label() != "naive")
            .count(),
        4
    );
}

#[test]
fn churn_aware_placement_beats_naive_under_correlated_failures() {
    let report = policy_grid().run(Threads::Auto).report;
    for sched in ["PTS", "GFS (no GDE)"] {
        let cell = |policy: &str| {
            report
                .cell_full(sched, "16n", "uniform", "flakyracks", policy, "default")
                .expect("cell exists")
        };
        let (naive, aware) = (cell("naive"), cell("churn-aware"));
        let (n_disp, a_disp) = (
            naive.median("displacement_count"),
            aware.median("displacement_count"),
        );
        assert!(
            a_disp < n_disp,
            "{sched}: churn-aware placement must strictly reduce displacements \
             (naive {n_disp}, churn-aware {a_disp})"
        );
        let (n_jct, a_jct) = (
            naive.median("displaced_mean_jct_s"),
            aware.median("displaced_mean_jct_s"),
        );
        assert!(
            a_jct < n_jct,
            "{sched}: churn-aware placement must strictly reduce displaced-JCT \
             (naive {n_jct}, churn-aware {a_jct})"
        );
        // and it must not buy this by abandoning work: completion holds up
        assert!(
            aware.median("hp_completion") >= naive.median("hp_completion"),
            "{sched}: HP completion must not regress"
        );
    }
}

#[test]
fn golden_policy_grid_pinned() {
    let result = policy_grid().run(Threads::Auto);
    let json = result.report.to_json();
    if std::env::var("GFS_PRINT_GOLDEN").is_ok() {
        println!("GOLDEN_POLICY = {}", fnv1a(&json));
        println!(
            "{}",
            result.report.render_table(&[
                "displacement_count",
                "displaced_mean_jct_s",
                "hp_completion",
                "hp_p99_jct_s",
                "spot_mean_jqt_s",
            ])
        );
    }
    assert_eq!(
        fnv1a(&json),
        GOLDEN_POLICY,
        "policy grid output drifted — placement-policy scoring, domain \
         bookkeeping or aggregation changed (update the pin only if \
         intentional)"
    );
}

/// Captured at PR 5 (churn-aware placement); regenerate with
/// `GFS_PRINT_GOLDEN=1 cargo test golden_policy -- --nocapture`.
const GOLDEN_POLICY: u64 = 9_377_287_759_420_715_552;
