//! Determinism, pinning and *effectiveness* of the capacity-market axis
//! — the acceptance gate of the closed-loop market: under one shared
//! spot-price shock, the forecast-driven controller must strictly reduce
//! total spend against the PR-4 time-driven autoscale schedule (billed
//! by the passive meter) at equal-or-better mean HP JCT, for both
//! baseline schedulers; the market must never displace work through an
//! unsafe release; a crash-recovered market run must reproduce the
//! spend integrals bit for bit; and the whole grid stays byte-identical
//! for any worker count.

mod common;

use common::fnv1a;
use gfs::lab::{
    ClusterShape, DynamicsAxis, Grid, MarketAxis, SchedulerSpec, Threads, WorkloadAxis,
};
use gfs::market::{spike, ForecastParams, MarketDriver, MarketSpec};
use gfs::prelude::*;
use gfs::sim::{report_hash, ClusterService, ServiceSnapshot};

const SIM_HORIZON: u64 = 64 * HOUR;

/// 2 schedulers × {none, autoscale} dynamics × {none, bill, closedloop}
/// markets × 3 seeds = 12 cells / 36 runs, all under the same 3× A100
/// price spike (hours 6–18). The three market regimes:
///
/// - `none` — no meter, no controller: the historical engine path.
/// - `bill` — the passive meter pricing whatever the PR-4 autoscale
///   timeline buys (nodes added by the `autoscale` dynamics bill from
///   the moment they join, shock included).
/// - `closedloop` — the forecast controller buying and releasing on its
///   own, price-aware, with no static timeline.
fn market_grid() -> Grid {
    // the spike opens after the arrival wave (hours 0-4): the window
    // where the timed schedule is *holding* capacity it no longer needs
    // while the closed loop has already released it
    let shock = spike(GpuModel::A100, 6, 12, 3.0);
    Grid::new()
        .schedulers([SchedulerSpec::yarn_cs(), SchedulerSpec::fgd()])
        .shape(ClusterShape::a100(2, 8))
        .workload(WorkloadAxis::generated(
            "backlog",
            WorkloadConfig {
                hp_tasks: 14,
                spot_tasks: 4,
                spot_scale: 2.0,
                horizon_secs: 4 * HOUR,
                ..WorkloadConfig::default()
            },
        ))
        .dynamics([
            DynamicsAxis::none(),
            DynamicsAxis::autoscale("autoscale", SimTime::from_hours(1), HOUR, 4, 1),
        ])
        .markets([
            MarketAxis::none(),
            MarketAxis::new("bill", MarketSpec::fixed_price().with_shocks(shock.clone())),
            MarketAxis::new(
                "closedloop",
                MarketSpec::forecast(ForecastParams {
                    // two nodes per boundary front-loads the backlog
                    // faster than the schedule's one-per-hour trickle
                    // without overshooting the demand estimate and then
                    // holding the excess through the spike
                    max_nodes_per_step: 2,
                    ..ForecastParams::default()
                })
                .with_shocks(shock),
            ),
        ])
        .seeds([1, 2, 3])
        .sim(SimConfig {
            max_time_secs: Some(SIM_HORIZON),
            ..SimConfig::default()
        })
}

#[test]
fn market_grid_identical_across_thread_counts() {
    let grid = market_grid();
    let serial = grid.run(Threads::Fixed(1)).report.to_json();
    let parallel = grid.run(Threads::Fixed(8)).report.to_json();
    assert_eq!(
        serial, parallel,
        "thread count leaked into a market grid — the price walk, the \
         controller and the meter must be pure functions of (seed, state)"
    );
    let report = gfs::lab::GridReport::from_json(&serial).expect("round-trips");
    assert_eq!(report.cells.len(), 12);
    assert!(report.cells.iter().all(|c| c.seeds == [1, 2, 3]));
    // the market label round-trips; market-free cells stay label-free
    assert_eq!(
        report
            .cells
            .iter()
            .filter(|c| c.market_label() != "none")
            .count(),
        8
    );
}

/// The acceptance gate: against the billed PR-4 baseline (time-driven
/// autoscale under the passive meter), the closed loop must spend
/// strictly less at equal-or-better mean HP JCT, per scheduler, under
/// the identical price shock.
#[test]
fn forecast_controller_beats_timed_autoscale_under_price_shock() {
    let report = market_grid().run(Threads::Auto).report;
    let cell = |sched: &str, dynamics: &str, market: &str| {
        report
            .cells
            .iter()
            .find(|c| c.scheduler == sched && c.faults == dynamics && c.market_label() == market)
            .unwrap_or_else(|| panic!("cell {sched}/{dynamics}/{market} exists"))
    };
    let schedulers: Vec<String> = {
        let mut s: Vec<String> = report.cells.iter().map(|c| c.scheduler.clone()).collect();
        s.sort();
        s.dedup();
        s
    };
    assert_eq!(schedulers.len(), 2);
    for sched in &schedulers {
        let baseline = cell(sched, "autoscale", "bill");
        let closed = cell(sched, "none", "closedloop");
        let (b_spend, c_spend) = (
            baseline.median("market_spend_usd"),
            closed.median("market_spend_usd"),
        );
        assert!(
            b_spend > 0.0,
            "{sched}: the billed autoscale baseline must actually spend"
        );
        assert!(
            c_spend < b_spend,
            "{sched}: the closed loop must spend strictly less than the \
             timed autoscale schedule (bill ${b_spend:.0}, closedloop ${c_spend:.0})"
        );
        let (b_jct, c_jct) = (
            baseline.median("hp_mean_jct_s"),
            closed.median("hp_mean_jct_s"),
        );
        assert!(
            c_jct <= b_jct,
            "{sched}: cost savings must not come out of HP latency \
             (bill {b_jct:.0}s, closedloop {c_jct:.0}s)"
        );
        // and it buys less wholesale, not just cheaper
        assert!(
            closed.median("gpu_hours_bought") < baseline.median("gpu_hours_bought"),
            "{sched}: the closed loop should hold fewer GPU-hours"
        );
    }
}

/// The passive meter must be an observer: a `bill` market over a static
/// timeline reports costs but cannot change a single scheduling
/// decision relative to the bare autoscale run.
#[test]
fn passive_meter_never_perturbs_scheduling() {
    let report = market_grid().run(Threads::Auto).report;
    for sched in ["YARN-CS", "FGD"] {
        let find = |market: &str| {
            report
                .cells
                .iter()
                .find(|c| {
                    c.scheduler == sched && c.faults == "autoscale" && c.market_label() == market
                })
                .expect("cell exists")
        };
        let (bare, billed) = (find("none"), find("bill"));
        for metric in ["hp_mean_jct_s", "hp_completion", "spot_mean_jqt_s"] {
            assert_eq!(
                bare.median(metric).to_bits(),
                billed.median(metric).to_bits(),
                "{sched}: passive metering changed {metric}"
            );
        }
        assert!(billed.median("market_spend_usd") > 0.0);
    }
}

/// Safety property: the controller must never displace work through a
/// release. With no other failure source in the run, any displacement
/// at all would be an unsafe drain — across seeds, none are tolerated,
/// and every task still completes.
#[test]
fn controller_releases_never_displace_work() {
    let spec = MarketSpec::forecast(ForecastParams {
        max_nodes_per_step: 2,
        ..ForecastParams::default()
    })
    .with_vol(0.1)
    .with_shocks(spike(GpuModel::A100, 1, 3, 2.0));
    let shape = ClusterShape::a100(1, 8);
    let workload = WorkloadAxis::generated(
        "burst",
        WorkloadConfig {
            hp_tasks: 18,
            spot_tasks: 4,
            horizon_secs: 3 * HOUR,
            ..WorkloadConfig::default()
        },
    );
    // uncapped: duration draws from the log-normal tail can outlive any
    // fixed horizon, and a straggler cut off by the cap is not a market
    // failure — completion must be judged on the full run
    let sim = SimConfig {
        max_time_secs: None,
        ..SimConfig::default()
    };
    for seed in [1u64, 2, 3, 4, 5] {
        let mut sched = YarnCs::new();
        let report = gfs::market::run(
            shape.build(),
            &mut sched,
            workload.build(&shape, seed),
            &sim,
            &spec,
            seed,
        );
        assert!(
            report.nodes_added > 0,
            "seed {seed}: the burst must force the controller to buy"
        );
        let displaced: u32 = report.tasks.iter().map(|t| t.displacements).sum();
        assert_eq!(
            displaced, 0,
            "seed {seed}: a market release displaced running work — \
             release safety is broken"
        );
        assert!(
            report.tasks.iter().all(|t| t.finish.is_some()),
            "seed {seed}: every task must still complete"
        );
    }
}

/// Crash-recovery of a market run: park a journaled run mid-flight,
/// snapshot it, recover a fresh service from snapshot + journal replay,
/// resume a fresh driver, and require the continuation to land on the
/// uninterrupted run's report hash with the three spend integrals equal
/// bit for bit.
#[test]
fn recovered_market_run_reproduces_spend_bit_for_bit() {
    const SEED: u64 = 11;
    let spec = MarketSpec::forecast(ForecastParams {
        max_nodes_per_step: 2,
        ..ForecastParams::default()
    })
    .with_vol(0.1)
    .with_shocks(spike(GpuModel::A100, 2, 4, 3.0));
    let shape = ClusterShape::a100(1, 8);
    let workload = WorkloadAxis::generated(
        "burst",
        WorkloadConfig {
            hp_tasks: 16,
            spot_tasks: 4,
            horizon_secs: 4 * HOUR,
            ..WorkloadConfig::default()
        },
    );
    let sim = SimConfig {
        max_time_secs: Some(SIM_HORIZON),
        ..SimConfig::default()
    };

    // the uninterrupted golden run
    let mut golden_sched = YarnCs::new();
    let mut golden_svc = ClusterService::new(shape.build(), sim.clone());
    let mut golden_driver = MarketDriver::new(
        spec.build_controller(),
        spec.build_prices(SEED),
        &golden_svc,
    );
    golden_svc.admit_tasks(workload.build(&shape, SEED));
    golden_svc.start();
    golden_driver.drive(&mut golden_svc, &mut golden_sched);
    let golden_steps = golden_svc.steps();
    let golden = golden_svc.finish();
    assert!(
        golden.market_spend_usd > 0.0,
        "the golden run must exercise the meter"
    );

    // the victim: same run, journaled, killed halfway
    let mut victim_sched = YarnCs::new();
    let mut svc = ClusterService::new(shape.build(), sim.clone());
    svc.enable_journal();
    let mut driver = MarketDriver::new(spec.build_controller(), spec.build_prices(SEED), &svc);
    let fleet_origin = driver.fleet_origin();
    svc.admit_tasks(workload.build(&shape, SEED));
    svc.start();
    let parked = driver.drive_until_step(&mut svc, &mut victim_sched, golden_steps / 2);
    assert!(parked, "the run must still be in flight at the crash point");
    assert!(
        svc.report().market_spend_usd > 0.0,
        "spend must already be accrued at the crash point for the \
         resume path to have something to carry over"
    );
    let snap_json = svc.snapshot(&victim_sched).to_json();
    let journal = svc.journal().expect("journal enabled").text().to_string();
    drop(svc); // the crash

    // recovery: snapshot + journal suffix + a fresh driver resumed
    let snap = ServiceSnapshot::from_json(&snap_json).expect("snapshot parses");
    let mut standby = YarnCs::new();
    let mut recovered_svc = ClusterService::restore(snap, &mut standby).expect("restores");
    let replay = recovered_svc.replay_journal(&journal, &mut standby);
    assert!(replay.rejected.is_none(), "journal must be undamaged");
    assert_eq!(
        replay.applied, 0,
        "a snapshot taken at the crash point subsumes the whole journal"
    );
    let mut resumed = MarketDriver::resume(
        spec.build_controller(),
        spec.build_prices(SEED),
        &recovered_svc,
        fleet_origin,
    );
    resumed.drive(&mut recovered_svc, &mut standby);
    let recovered = recovered_svc.finish();

    assert_eq!(
        report_hash(&golden),
        report_hash(&recovered),
        "the recovered continuation must be bit-identical to the \
         uninterrupted run"
    );
    for (name, g, r) in [
        (
            "market_spend_usd",
            golden.market_spend_usd,
            recovered.market_spend_usd,
        ),
        (
            "gpu_hours_bought",
            golden.gpu_hours_bought,
            recovered.gpu_hours_bought,
        ),
        (
            "stranded_gpu_hours",
            golden.stranded_gpu_hours,
            recovered.stranded_gpu_hours,
        ),
    ] {
        assert_eq!(
            g.to_bits(),
            r.to_bits(),
            "{name} drifted across recovery (golden {g}, recovered {r})"
        );
    }
}

#[test]
fn golden_market_grid_pinned() {
    let result = market_grid().run(Threads::Auto);
    let json = result.report.to_json();
    if std::env::var("GFS_PRINT_GOLDEN").is_ok() {
        println!("GOLDEN_MARKET = {}", fnv1a(&json));
        println!(
            "{}",
            result.report.render_table(&[
                "hp_mean_jct_s",
                "market_spend_usd",
                "gpu_hours_bought",
                "cost_per_completed_usd",
                "stranded_gpu_hours",
            ])
        );
    }
    assert_eq!(
        fnv1a(&json),
        GOLDEN_MARKET,
        "market grid output drifted — the price walk, controller \
         decisions, cost metering or aggregation changed (update the pin \
         only if intentional)"
    );
}

/// Captured at PR 7 (closed-loop capacity market); regenerate with
/// `GFS_PRINT_GOLDEN=1 cargo test golden_market -- --nocapture`.
const GOLDEN_MARKET: u64 = 966_714_937_824_539_861;
