//! Golden pin: the rebuilt tape-arena trainers must reproduce the
//! pre-rebuild per-epoch loss trajectories bit-identically on a fixed seed.
//!
//! The pinned constants below were captured from the pre-rebuild graph
//! (per-node allocated `Vec<Node>`) by running with `GFS_GOLDEN_RECORD=1`.
//! Because `minibatches` derives each epoch's shuffle from `seed ^ f(epoch)`,
//! a k-epoch fit's losses are a prefix of a (k+1)-epoch fit's losses, so
//! pinning the `final_loss` of fresh fits at k = 1..=4 pins the whole
//! four-epoch trajectory.

use gfs::forecast::{DLinear, Forecaster, OrgLinear, TrainConfig};
use gfs::scenario;

const EPOCHS: usize = 4;

fn cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 32,
        lr: 0.01,
        seed: 7,
        stride: 24,
        train_frac: 0.8,
    }
}

fn trajectory(make: &dyn Fn() -> Box<dyn Forecaster>) -> Vec<u64> {
    let data = scenario::org_template(3, 168, 24, 1);
    (1..=EPOCHS)
        .map(|k| {
            let mut m = make();
            m.fit(&data, &cfg(k)).final_loss.to_bits()
        })
        .collect()
}

fn check(name: &str, got: &[u64], want: &[u64]) {
    if std::env::var("GFS_GOLDEN_RECORD").is_ok() {
        println!("const {name}: [u64; {}] = {got:?};", got.len());
        return;
    }
    assert_eq!(
        got,
        want,
        "{name} per-epoch loss trajectory drifted from the pre-rebuild pin\n\
         got  (f64): {:?}\nwant (f64): {:?}",
        got.iter().map(|&b| f64::from_bits(b)).collect::<Vec<_>>(),
        want.iter().map(|&b| f64::from_bits(b)).collect::<Vec<_>>(),
    );
}

const ORGLINEAR_GOLDEN: [u64; 4] = [
    4620343287459476452,
    4612012138673015004,
    4611516875510481393,
    4613027946250314839,
];

const DLINEAR_GOLDEN: [u64; 4] = [
    4612765049514944885,
    4607556613720183214,
    4608384572764030985,
    4605894398950093819,
];

#[test]
fn orglinear_loss_trajectory_pinned() {
    let data = scenario::org_template(3, 168, 24, 1);
    let got = trajectory(&|| Box::new(OrgLinear::new(&data, 11)));
    check("ORGLINEAR_GOLDEN", &got, &ORGLINEAR_GOLDEN);
}

#[test]
fn dlinear_loss_trajectory_pinned() {
    let data = scenario::org_template(3, 168, 24, 1);
    let got = trajectory(&|| Box::new(DLinear::new(&data, 11)));
    check("DLINEAR_GOLDEN", &got, &DLINEAR_GOLDEN);
}
