//! Determinism and pinning for the *cluster-timeline* experiment grids —
//! the acceptance gate of the DynamicsPlan redesign: a grid mixing a
//! rolling maintenance drain, correlated rack failures and an autoscale
//! schedule (plus a static control) over four seeds must aggregate
//! byte-identically for any worker count, prove the timelines are seeded
//! or closed-form (never wall-clock or thread dependent), and report the
//! drained/migrated/scaled-capacity metrics next to the fault ones.

mod common;

use common::fnv1a;
use gfs::lab::{ClusterShape, DynamicsAxis, Grid, SchedulerSpec, Threads, WorkloadAxis};
use gfs::prelude::*;

/// 2 schedulers × 1 shape × 4 dynamics axes × 4 seeds = 8 cells / 32
/// runs: none / correlated racks / rolling drain / drain+autoscale merge.
fn dynamics_grid() -> Grid {
    let horizon = 8 * HOUR;
    let sim_horizon = 72 * HOUR;
    Grid::new()
        .schedulers([SchedulerSpec::yarn_cs(), SchedulerSpec::fgd()])
        .shape(ClusterShape::a100(6, 8))
        .workload(WorkloadAxis::generated(
            "steady",
            WorkloadConfig {
                hp_tasks: 30,
                spot_tasks: 12,
                spot_scale: 2.0,
                horizon_secs: horizon,
                ..WorkloadConfig::default()
            },
        ))
        .dynamics([
            DynamicsAxis::none(),
            DynamicsAxis::correlated("racks3", 3, 10.0 * HOUR as f64, HOUR as f64, sim_horizon),
            DynamicsAxis::rolling_drain("wave", SimTime::from_hours(2), HOUR, 1_800, 2 * HOUR),
            // composition: a rolling drain with scale-out riding along,
            // built from the plan-level merge API
            DynamicsAxis::new("wave+grow", |shape, _seed| {
                let wave = DynamicsPlan::rolling_drain(
                    shape.node_count(),
                    SimTime::from_hours(2),
                    HOUR,
                    1_800,
                    2 * HOUR,
                );
                let grow = DynamicsPlan::scale_out(
                    NodeTemplate {
                        model: GpuModel::A100,
                        gpus: 8,
                    },
                    SimTime::from_hours(3),
                    2 * HOUR,
                    2,
                    1,
                );
                wave.merge(grow).expect("disjoint histories compose")
            }),
        ])
        .seeds([1, 2, 3, 4])
        .sim(SimConfig {
            max_time_secs: Some(sim_horizon),
            ..SimConfig::default()
        })
}

#[test]
fn dynamics_grid_identical_across_thread_counts() {
    let grid = dynamics_grid();
    let serial = grid.run(Threads::Fixed(1)).report.to_json();
    let parallel = grid.run(Threads::Fixed(8)).report.to_json();
    assert_eq!(
        serial, parallel,
        "thread count leaked into a dynamic grid — cluster timelines must be \
         pure functions of (shape, seed)"
    );
    let report = gfs::lab::GridReport::from_json(&serial).expect("round-trips");
    assert_eq!(report.cells.len(), 8);
    assert!(report.cells.iter().all(|c| c.seeds == [1, 2, 3, 4]));
}

#[test]
fn dynamics_metrics_scale_with_their_axes() {
    let report = dynamics_grid().run(Threads::Auto).report;
    let cell = |d: &str| {
        report
            .cell_at("YARN-CS", "6n", "steady", d, "default")
            .expect("cell exists")
    };
    let (clean, racks, wave, grow) = (
        cell("none"),
        cell("racks3"),
        cell("wave"),
        cell("wave+grow"),
    );
    // the static control reports no dynamics at all — not even the rows
    assert_eq!(clean.median("availability"), 1.0);
    assert!(clean.metric("node_drains").is_none());
    assert!(clean.metric("added_gpus").is_none());
    // correlated racks: capacity loss without any drain bookkeeping
    assert!(racks.median("availability") < 1.0);
    assert!(racks.metric("node_drains").is_none());
    // the rolling wave drains every node once; long tasks migrate instead
    // of dying (forced displacement stays the rare path)
    assert_eq!(wave.median("node_drains"), 6.0);
    assert!(wave.metric("migration_count").expect("metric").max > 0.0);
    // scale-out shows up as added capacity and softens the drain pain:
    // never-lower availability than the same wave without growth
    assert_eq!(grow.median("added_gpus"), 16.0);
    assert!(grow.median("availability") >= wave.median("availability") - 1e-9);
}

#[test]
fn golden_dynamics_grid_pinned() {
    let result = dynamics_grid().run(Threads::Auto);
    let json = result.report.to_json();
    if std::env::var("GFS_PRINT_GOLDEN").is_ok() {
        println!("GOLDEN_DYNAMICS = {}", fnv1a(&json));
    }
    assert_eq!(
        fnv1a(&json),
        GOLDEN_DYNAMICS,
        "dynamic grid output drifted — drain/migration/scale-out handling, \
         timeline generation or aggregation changed (update the pin only if \
         intentional)"
    );
}

/// Captured at PR 4 (cluster-timeline API redesign); regenerate with
/// `GFS_PRINT_GOLDEN=1 cargo test golden_dynamics -- --nocapture`.
const GOLDEN_DYNAMICS: u64 = 15_270_961_167_713_283_595;
