//! Golden-report regression tests: the hot-path refactors (capacity index,
//! dense engine state, blocked matmul) must not change a single scheduling
//! outcome. These hashes were captured on the pre-refactor engine; any
//! change to them means scheduling behaviour drifted.

mod common;

use gfs::prelude::*;
use gfs_types::CheckpointPlan;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// FNV-1a over the canonical JSON encoding of the report.
fn report_hash(report: &SimReport) -> u64 {
    let json = serde_json::to_string(report).expect("report serializes");
    common::fnv1a(&json)
}

/// A 1 000-task random trace exercising gangs, fractions, evictions and
/// checkpoints.
fn random_trace() -> Vec<TaskSpec> {
    let mut rng = ChaCha8Rng::seed_from_u64(0x601d);
    let mut tasks = Vec::with_capacity(1_000);
    for i in 0..1_000u64 {
        let spot = rng.gen_bool(0.4);
        let pods = if rng.gen_bool(0.15) {
            rng.gen_range(2..4u32)
        } else {
            1
        };
        let builder = TaskSpec::builder(i + 1)
            .priority(if spot { Priority::Spot } else { Priority::Hp })
            .org(gfs_types::OrgId::new(rng.gen_range(0..6u16)))
            .pods(pods)
            .duration_secs(rng.gen_range(300..30_000u64))
            .submit_at(SimTime::from_secs(rng.gen_range(0..48 * HOUR)))
            .checkpoint(CheckpointPlan::Periodic {
                interval: rng.gen_range(600..3_600u64),
            });
        let builder = if pods == 1 && rng.gen_bool(0.2) {
            builder.gpus_per_pod(
                GpuDemand::fraction(*[0.25, 0.5].get(rng.gen_range(0..2usize)).expect("static"))
                    .expect("valid"),
            )
        } else {
            builder.gpus_per_pod(GpuDemand::whole(rng.gen_range(1..9u32)))
        };
        let builder = if spot {
            builder.guarantee_secs(HOUR)
        } else {
            builder
        };
        tasks.push(builder.build().expect("valid"));
    }
    tasks
}

fn run_trace(scheduler: &mut dyn Scheduler) -> SimReport {
    let cluster = Cluster::homogeneous(24, GpuModel::A100, 8);
    run(
        cluster,
        scheduler,
        random_trace(),
        &SimConfig {
            max_time_secs: Some(14 * 24 * HOUR),
            ..SimConfig::default()
        },
    )
}

#[test]
fn golden_1k_yarn_cs() {
    let report = run_trace(&mut YarnCs::new());
    assert_eq!(report.tasks.len(), 1_000);
    assert_eq!(
        report_hash(&report),
        GOLDEN_YARN,
        "YARN-CS scheduling outcome drifted from the pre-refactor engine"
    );
}

#[test]
fn golden_1k_gfs() {
    let report = run_trace(&mut GfsScheduler::with_defaults());
    assert_eq!(report.tasks.len(), 1_000);
    assert_eq!(
        report_hash(&report),
        GOLDEN_GFS,
        "GFS scheduling outcome drifted from the pre-refactor engine"
    );
}

#[test]
fn golden_runs_are_reproducible() {
    let a = report_hash(&run_trace(&mut YarnCs::new()));
    let b = report_hash(&run_trace(&mut YarnCs::new()));
    assert_eq!(
        a, b,
        "same trace + scheduler must reproduce bit-identically"
    );
}

// Captured from the pre-refactor (seed) engine; see the module docs.
// To regenerate intentionally: GFS_PRINT_GOLDEN=1 cargo test golden -- --nocapture
const GOLDEN_YARN: u64 = 0x7e14_86f2_e771_586d;
const GOLDEN_GFS: u64 = 0xd4ab_f0d5_9602_bc49;

#[test]
fn print_golden_hashes() {
    if std::env::var("GFS_PRINT_GOLDEN").is_ok() {
        println!(
            "GOLDEN_YARN = {:#x}",
            report_hash(&run_trace(&mut YarnCs::new()))
        );
        println!(
            "GOLDEN_GFS = {:#x}",
            report_hash(&run_trace(&mut GfsScheduler::with_defaults()))
        );
    }
}
