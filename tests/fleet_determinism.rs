//! Fleet-scale engine determinism properties.
//!
//! Two contracts pin the sharded engine (see `gfs::sim::fleet`):
//!
//! 1. **Thread-count invariance** — `run_fleet` with 8 workers produces
//!    the same merged report, shard hashes and fleet hash, byte for
//!    byte, as the serial run, across schedulers × dynamics × seeds.
//! 2. **Index/scan equivalence** — the O(log n) placement index answers
//!    every decision exactly as the O(n) reference scan, under random
//!    interleavings of placements, completions, node failures, drains
//!    and restores.

use gfs::prelude::*;
use gfs::sim::fleet::{domain_shards, run_fleet, FleetShard};
use gfs::trace::fleet::{FleetTraceConfig, FleetTraceGenerator};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

type Factory = dyn Fn(usize) -> Box<dyn Scheduler> + Sync;

fn yarn_factory(_: usize) -> Box<dyn Scheduler> {
    Box::new(YarnCs::new())
}

fn gfs_factory(_: usize) -> Box<dyn Scheduler> {
    Box::new(GfsScheduler::with_defaults())
}

/// Per-shard churn: one staggered failure/recovery plus a drain, all
/// shard-local (node ids are shard-relative).
fn churn_plan(shard: usize) -> DynamicsPlan {
    let s = shard as u64;
    DynamicsPlan::new(vec![
        ClusterEvent::down(NodeId::new(1), SimTime::from_hours(3 + s)),
        ClusterEvent::drain(NodeId::new(2), SimTime::from_hours(5 + s), HOUR),
        ClusterEvent::up(NodeId::new(1), SimTime::from_hours(9 + s)),
    ])
    .expect("ordered plan")
}

fn build_fleet(seed: u64, churn: bool) -> Vec<FleetShard> {
    let shards = 3u32;
    let clusters = domain_shards(shards as usize, 6, GpuModel::A100, 8);
    let traces = FleetTraceGenerator::new(FleetTraceConfig {
        shards,
        tasks: 240,
        num_orgs: 12,
        seed,
        ..FleetTraceConfig::default()
    })
    .generate_sharded();
    clusters
        .into_iter()
        .zip(traces)
        .enumerate()
        .map(|(s, (cluster, tasks))| FleetShard {
            cluster,
            tasks,
            dynamics: if churn {
                churn_plan(s)
            } else {
                DynamicsPlan::none()
            },
        })
        .collect()
}

fn report_bytes(fleet: &gfs::sim::FleetReport) -> String {
    let mut out = String::new();
    fleet.report.serialize_json(&mut out);
    out
}

#[test]
fn sharded_run_is_bit_identical_across_thread_counts() {
    let factories: [(&str, &Factory); 2] = [("yarn_cs", &yarn_factory), ("gfs", &gfs_factory)];
    let cfg = SimConfig {
        max_time_secs: Some(30 * 24 * HOUR),
        ..SimConfig::default()
    };
    for (name, factory) in factories {
        for churn in [false, true] {
            for seed in [1u64, 2, 3, 4, 5, 6, 7, 8] {
                let serial = run_fleet(build_fleet(seed, churn), factory, &cfg, 1);
                let parallel = run_fleet(build_fleet(seed, churn), factory, &cfg, 8);
                assert_eq!(
                    serial.fleet_hash, parallel.fleet_hash,
                    "fleet hash drifted: scheduler={name} churn={churn} seed={seed}"
                );
                assert_eq!(
                    serial.shard_hashes, parallel.shard_hashes,
                    "shard hashes drifted: scheduler={name} churn={churn} seed={seed}"
                );
                assert_eq!(
                    report_bytes(&serial),
                    report_bytes(&parallel),
                    "merged report drifted: scheduler={name} churn={churn} seed={seed}"
                );
            }
        }
    }
}

fn probe_task(id: u64, rng: &mut ChaCha8Rng) -> TaskSpec {
    let gpus = [1u32, 2, 4, 8][rng.gen_range(0..4)];
    let pods = if rng.gen_bool(0.2) { 2 } else { 1 };
    let priority = if rng.gen_bool(0.3) {
        Priority::Spot
    } else {
        Priority::Hp
    };
    TaskSpec::builder(id)
        .org(OrgId::new(rng.gen_range(0..8)))
        .priority(priority)
        .pods(pods)
        .gpus_per_pod(GpuDemand::whole(gpus))
        .duration_secs(3_600)
        .build()
        .expect("valid probe")
}

#[test]
fn score_index_agrees_with_scan_under_random_churn() {
    const NODES: u32 = 48;
    for seed in [3u64, 11, 29] {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut cluster = Cluster::homogeneous(NODES, GpuModel::A100, 8);
        let pts = gfs::core::Pts::new(GfsParams::default(), PtsVariant::Full);
        let mut live: Vec<TaskId> = Vec::new();
        let mut next_id = 1u64;
        for step in 0..400u64 {
            let now = SimTime::from_secs(step * 60);
            match rng.gen_range(0..12u32) {
                0 => {
                    let node = NodeId::new(rng.gen_range(0..NODES));
                    if let Ok(displaced) = cluster.fail_node(node, now) {
                        live.retain(|id| !displaced.iter().any(|d| d.task.spec.id == *id));
                    }
                }
                1 => {
                    let node = NodeId::new(rng.gen_range(0..NODES));
                    let _ = cluster.restore_node(node, now);
                }
                2 => {
                    let node = NodeId::new(rng.gen_range(0..NODES));
                    let _ = cluster.drain_node(node, now + 2 * HOUR);
                }
                3 | 4 if !live.is_empty() => {
                    let idx = rng.gen_range(0..live.len());
                    let id = live.swap_remove(idx);
                    let _ = cluster.finish_task(id, now);
                }
                _ => {
                    let spec = probe_task(next_id, &mut rng);
                    next_id += 1;
                    let fast = pts.schedule_nonpreemptive(&spec, &cluster, now);
                    let slow = pts.schedule_nonpreemptive_scan(&spec, &cluster, now);
                    assert_eq!(
                        fast, slow,
                        "index/scan divergence at step {step} seed {seed}"
                    );
                    if let Some(nodes) = fast {
                        let id = spec.id;
                        cluster
                            .start_task(spec, &nodes, now, 0)
                            .expect("placement admits the task");
                        live.push(id);
                    }
                }
            }
            // every mutation is followed by a fresh decision comparison
            let spec = probe_task(u64::MAX - step, &mut rng);
            let fast = pts.schedule_nonpreemptive(&spec, &cluster, now);
            let slow = pts.schedule_nonpreemptive_scan(&spec, &cluster, now);
            assert_eq!(
                fast, slow,
                "post-mutation divergence at step {step} seed {seed}"
            );
        }
    }
}
