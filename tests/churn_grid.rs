//! Determinism and pinning for *faulted, heterogeneous* experiment grids —
//! the acceptance gate of the cluster-dynamics subsystem: a grid mixing
//! two GPU models, two failure rates (plus a fault-free control) and four
//! seeds must aggregate byte-identically for any worker count, prove the
//! fault schedules are seeded (not wall-clock or thread dependent), and
//! report the availability/displacement metrics.

mod common;

use common::fnv1a;
use gfs::lab::{ClusterShape, DynamicsAxis, Grid, NodeGroup, SchedulerSpec, Threads, WorkloadAxis};
use gfs::prelude::*;

/// 2 schedulers × 1 heterogeneous shape × 3 fault axes × 4 seeds = 6
/// cells / 24 runs, with both pools exercised by a mixed-model workload.
fn churn_grid() -> Grid {
    let shape = ClusterShape::heterogeneous([
        NodeGroup {
            nodes: 4,
            gpus_per_node: 8,
            model: GpuModel::A100,
        },
        NodeGroup {
            nodes: 2,
            gpus_per_node: 8,
            model: GpuModel::H800,
        },
    ]);
    let horizon = 8 * HOUR;
    Grid::new()
        .schedulers([SchedulerSpec::yarn_cs(), SchedulerSpec::fgd()])
        .shape(shape)
        .workload(WorkloadAxis::generated_mixed(
            "mixed",
            WorkloadConfig {
                hp_tasks: 30,
                spot_tasks: 12,
                spot_scale: 2.0,
                horizon_secs: horizon,
                ..WorkloadConfig::default()
            },
        ))
        .dynamics([
            DynamicsAxis::none(),
            DynamicsAxis::mtbf("mtbf24h", 24.0 * HOUR as f64, HOUR as f64, 72 * HOUR),
            DynamicsAxis::mtbf("mtbf6h", 6.0 * HOUR as f64, HOUR as f64, 72 * HOUR),
        ])
        .seeds([1, 2, 3, 4])
        .sim(SimConfig {
            max_time_secs: Some(72 * HOUR),
            ..SimConfig::default()
        })
}

#[test]
fn faulted_heterogeneous_grid_identical_across_thread_counts() {
    let grid = churn_grid();
    let serial = grid.run(Threads::Fixed(1)).report.to_json();
    let parallel = grid.run(Threads::Fixed(8)).report.to_json();
    assert_eq!(
        serial, parallel,
        "thread count leaked into a faulted grid — fault schedules must be \
         pure functions of (shape, seed)"
    );
    let report = gfs::lab::GridReport::from_json(&serial).expect("round-trips");
    assert_eq!(report.cells.len(), 6);
    assert!(report.cells.iter().all(|c| c.seeds == [1, 2, 3, 4]));
}

#[test]
fn churn_metrics_reported_and_scale_with_failure_rate() {
    let report = churn_grid().run(Threads::Auto).report;
    let cell = |faults: &str| {
        report
            .cell_at("YARN-CS", "4a100+2h800", "mixed", faults, "default")
            .expect("cell exists")
    };
    let (clean, mild, churny) = (cell("none"), cell("mtbf24h"), cell("mtbf6h"));
    assert_eq!(clean.median("availability"), 1.0);
    assert_eq!(clean.median("displacement_count"), 0.0);
    // availability degrades monotonically with the failure rate (medians
    // over four seeds; 6 h MTBF on six nodes over 3 days is heavy churn)
    assert!(mild.median("availability") < 1.0);
    assert!(churny.median("availability") < mild.median("availability"));
    assert!(churny.metric("displacement_count").expect("metric").max > 0.0);
    // displaced tasks that completed report a JCT
    assert!(churny.metric("displaced_mean_jct_s").expect("metric").max > 0.0);
}

#[test]
fn golden_churn_grid_pinned() {
    let result = churn_grid().run(Threads::Auto);
    let json = result.report.to_json();
    if std::env::var("GFS_PRINT_GOLDEN").is_ok() {
        println!("GOLDEN_CHURN = {}", fnv1a(&json));
    }
    assert_eq!(
        fnv1a(&json),
        GOLDEN_CHURN,
        "faulted heterogeneous grid output drifted — displacement handling, \
         fault-schedule generation or aggregation changed (update the pin \
         only if intentional)"
    );
}

/// Captured at PR 3 (cluster-dynamics subsystem); regenerate with
/// `GFS_PRINT_GOLDEN=1 cargo test golden_churn -- --nocapture`.
const GOLDEN_CHURN: u64 = 9_301_490_688_903_361_234;
