//! Property-based tests over the core invariants: cluster capacity
//! accounting, checkpoint arithmetic, quota bounds and simulator
//! conservation laws.
//!
//! The harness is a small in-repo generator loop (seeded ChaCha8 →
//! deterministic pseudo-random cases) rather than an external property
//! testing crate, which keeps the workspace buildable offline. Each
//! property runs `CASES` independent cases; failures print the case seed
//! so a reproduction is one constant away.

use gfs::prelude::*;
use gfs_types::CheckpointPlan;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: u64 = 48;

/// Runs `f` once per case with an independently seeded generator.
fn for_all_cases(name: &str, f: impl Fn(&mut ChaCha8Rng)) {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5eed_0000 + case);
        // isolate failures to a case seed
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(e) = result {
            panic!("property {name} failed at case {case}: {e:?}");
        }
    }
}

#[test]
fn allocation_never_exceeds_capacity() {
    for_all_cases("allocation_never_exceeds_capacity", |rng| {
        let mut cluster = Cluster::homogeneous(4, GpuModel::A100, 8);
        let capacity = cluster.capacity(None);
        let n = rng.gen_range(1..40usize);
        for i in 0..n {
            let gpus = rng.gen_range(1..9u32);
            let at = rng.gen_range(0..10_000u64);
            let spec = TaskSpec::builder(i as u64 + 1)
                .priority(Priority::Spot)
                .gpus_per_pod(GpuDemand::whole(gpus))
                .duration_secs(1_000)
                .build()
                .expect("valid");
            // first-fit attempt; failures are fine
            let node = cluster
                .nodes()
                .iter()
                .find(|n| n.idle_gpus() >= gpus)
                .map(gfs::cluster::Node::id);
            if let Some(node) = node {
                cluster
                    .start_task(spec, &[node], SimTime::from_secs(at), 0)
                    .expect("fits");
            }
            assert!(cluster.hp_allocated(None) + cluster.spot_allocated(None) <= capacity + 1e-9);
            assert!(f64::from(cluster.idle_gpus(None)) <= capacity);
        }
    });
}

#[test]
fn checkpoint_preserved_progress_is_monotone_and_bounded() {
    for_all_cases("checkpoint_preserved_progress", |rng| {
        let interval = rng.gen_range(1..5_000u64);
        let carried = rng.gen_range(0..10_000u64);
        let executed = rng.gen_range(0..10_000u64);
        let plan = CheckpointPlan::Periodic { interval };
        let preserved = plan.preserved_progress(carried, executed);
        assert!(preserved >= carried, "never loses pre-existing progress");
        assert!(preserved <= carried + executed, "never invents progress");
        assert_eq!(
            plan.wasted_work(carried, executed),
            carried + executed - preserved
        );
    });
}

#[test]
fn quota_stays_within_physical_bounds() {
    for_all_cases("quota_stays_within_physical_bounds", |rng| {
        let demand = rng.gen_range(0.0..5_000.0f64);
        let evictions = rng.gen_range(0..30usize);
        let starts = rng.gen_range(0..30usize);
        let cluster = Cluster::homogeneous(16, GpuModel::A100, 8);
        let mut sqa = gfs::core::SpotQuotaAllocator::new(GfsParams::default());
        let now = SimTime::from_hours(1);
        for i in 0..evictions {
            sqa.record_eviction(TaskId::new(i as u64), now);
        }
        for i in 0..starts {
            sqa.record_spot_start(TaskId::new(1_000 + i as u64), now, 100);
        }
        sqa.update(now, &cluster, demand);
        assert!(sqa.quota() >= 0.0);
        assert!(sqa.quota() <= cluster.capacity(None) + 1e-9);
        let (lo, hi) = GfsParams::default().eta_bounds;
        assert!(sqa.eta() >= lo && sqa.eta() <= hi);
    });
}

#[test]
fn simulator_conserves_tasks_and_work() {
    for_all_cases("simulator_conserves_tasks_and_work", |rng| {
        let n = rng.gen_range(10..30usize);
        let mut tasks = Vec::new();
        for i in 0..n {
            let raw: u64 = rng.gen_range(0..u64::MAX);
            let priority = if raw.is_multiple_of(3) {
                Priority::Spot
            } else {
                Priority::Hp
            };
            let pods = (raw % 3 + 1) as u32;
            let gpus = (raw / 3 % 8 + 1) as u32;
            let dur = 60 + raw / 7 % 20_000;
            let submit = raw / 11 % 40_000;
            tasks.push(
                TaskSpec::builder(i as u64 + 1)
                    .priority(priority)
                    .pods(pods)
                    .gpus_per_pod(GpuDemand::whole(gpus))
                    .duration_secs(dur)
                    .submit_at(SimTime::from_secs(submit))
                    .checkpoint(CheckpointPlan::Periodic { interval: 1_800 })
                    .build()
                    .expect("valid"),
            );
        }
        let cluster = Cluster::homogeneous(6, GpuModel::A100, 8);
        let mut sched = YarnCs::new();
        let report = run(
            cluster,
            &mut sched,
            tasks.clone(),
            &SimConfig {
                max_time_secs: Some(10 * 24 * HOUR),
                ..SimConfig::default()
            },
        );
        assert_eq!(report.tasks.len(), tasks.len(), "every submission recorded");
        for t in &report.tasks {
            if let Some(jct) = t.jct() {
                assert!(jct >= t.work_secs, "completion time covers the work");
            }
            assert!(t.runs >= t.evictions, "each eviction ends one run");
        }
        assert_eq!(report.failed_commits, 0u64);
    });
}

/// Brute-force reference for the capacity-index queries: a direct scan
/// over every node, mirroring the pre-index scheduler loops.
mod brute {
    use super::*;
    use gfs::cluster::Node;

    pub fn whole_fit(cluster: &Cluster, model: GpuModel, need: u32) -> Vec<u32> {
        cluster
            .nodes()
            .iter()
            .filter(|n| n.is_schedulable() && n.model() == model && n.idle_gpus() >= need)
            .map(|n| n.id().raw())
            .collect()
    }

    pub fn fraction_fit(cluster: &Cluster, model: GpuModel, f: f64) -> Vec<u32> {
        cluster
            .nodes()
            .iter()
            .filter(|n| n.is_schedulable() && n.model() == model)
            .filter(|n| n.gpus().iter().any(|g| g.free_fraction() >= f - 1e-12))
            .map(|n| n.id().raw())
            .collect()
    }

    pub fn spot_on(cluster: &Cluster, node: gfs_types::NodeId) -> Vec<TaskId> {
        cluster
            .running()
            .filter(|rt| rt.spec.priority.is_spot() && rt.placements.iter().any(|p| p.node == node))
            .map(|rt| rt.spec.id)
            .collect()
    }

    pub fn fully_idle(cluster: &Cluster) -> usize {
        cluster
            .nodes()
            .iter()
            .filter(|n| n.is_schedulable() && n.idle_gpus() == n.total_gpus())
            .count()
    }

    pub fn preemption(cluster: &Cluster, model: GpuModel, need: u32) -> Vec<u32> {
        cluster
            .nodes()
            .iter()
            .filter(|n| n.is_schedulable() && n.model() == model)
            .filter(|n| n.idle_gpus() >= need || !spot_on(cluster, n.id()).is_empty())
            .map(Node::id)
            .map(gfs_types::NodeId::raw)
            .collect()
    }

    /// O(1) totals vs a fresh scan over in-service nodes.
    pub fn totals_consistent(cluster: &Cluster) {
        let idle: u32 = cluster.nodes().iter().map(Node::idle_gpus).sum();
        let hp: f64 = cluster.nodes().iter().map(Node::hp_allocated).sum();
        let spot: f64 = cluster.nodes().iter().map(Node::spot_allocated).sum();
        let cap: f64 = cluster
            .nodes()
            .iter()
            .filter(|n| n.is_schedulable())
            .map(|n| f64::from(n.total_gpus()))
            .sum();
        let cap_static: f64 = cluster
            .nodes()
            .iter()
            .map(|n| f64::from(n.total_gpus()))
            .sum();
        assert_eq!(cluster.idle_gpus(None), idle);
        // float totals: non-dyadic fractions (0.3, 0.75…) accumulate with
        // ulp-scale drift relative to a fresh sum
        assert!((cluster.hp_allocated(None) - hp).abs() < 1e-9);
        assert!((cluster.spot_allocated(None) - spot).abs() < 1e-9);
        assert_eq!(cluster.capacity(None), cap);
        assert_eq!(cluster.static_capacity(None), cap_static);
        for model in [GpuModel::A100, GpuModel::H800] {
            let m_idle: u32 = cluster
                .nodes()
                .iter()
                .filter(|n| n.model() == model)
                .map(Node::idle_gpus)
                .sum();
            let m_cap: f64 = cluster
                .nodes()
                .iter()
                .filter(|n| n.is_schedulable() && n.model() == model)
                .map(|n| f64::from(n.total_gpus()))
                .sum();
            assert_eq!(cluster.idle_gpus(Some(model)), m_idle);
            assert_eq!(cluster.capacity(Some(model)), m_cap);
        }
    }
}

/// Drives an arbitrary start/evict/finish/fail/drain/add/restore
/// sequence and checks every capacity-index query against the
/// brute-force node scan after each mutation. This is the safety net for
/// the incremental index maintenance in `Cluster::{start_task,
/// evict_task, finish_task, fail_node, drain_node, add_node,
/// restore_node}` — including that a failed or draining node's buckets
/// vanish atomically, scale-out grows every structure, and the O(1)
/// totals stay exact through churn.
#[test]
fn capacity_index_matches_brute_force_scan() {
    for_all_cases("capacity_index_matches_brute_force_scan", |rng| {
        let mut cluster = Cluster::homogeneous(6, GpuModel::A100, 8);
        let mut live: Vec<TaskId> = Vec::new();
        let mut next_id = 1u64;
        for step in 0..60 {
            // mutate: mostly starts, sometimes evict/finish a live task,
            // sometimes fail, drain, restore or add a node
            let node_count = cluster.nodes().len() as u32;
            let action = rng.gen_range(0..16u32);
            if action == 10 {
                // fail a random node; tasks drained there leave `live`
                let node = gfs_types::NodeId::new(rng.gen_range(0..node_count));
                if cluster.node(node).expect("known id").is_up() {
                    let displaced = cluster
                        .fail_node(node, SimTime::from_secs(step))
                        .expect("up node fails cleanly");
                    live.retain(|id| !displaced.iter().any(|d| d.task.spec.id == *id));
                } else {
                    assert!(cluster.fail_node(node, SimTime::from_secs(step)).is_err());
                }
            } else if action == 13 {
                // drain a random node: pods keep running, placement stops
                let node = gfs_types::NodeId::new(rng.gen_range(0..node_count));
                let ok = cluster.node(node).expect("known id").is_schedulable();
                let drained = cluster.drain_node(node, SimTime::from_secs(step + 1_000));
                assert_eq!(drained.is_ok(), ok, "drain succeeds iff schedulable");
            } else if action == 14 && node_count < 10 {
                // scale out: a fresh node joins every structure
                let id = cluster.add_node(GpuModel::A100, 8);
                assert_eq!(id.raw(), node_count, "sequential minting");
            } else if action >= 11 {
                // restore a random node (no-op error when in full service);
                // also cancels in-progress drains
                let node = gfs_types::NodeId::new(rng.gen_range(0..node_count));
                let was_schedulable = cluster.node(node).expect("known id").is_schedulable();
                let restored = cluster.restore_node(node, SimTime::from_secs(step));
                assert_eq!(restored.is_ok(), !was_schedulable);
            } else if action < 6 || live.is_empty() {
                let spot = rng.gen_bool(0.6);
                let fractional = rng.gen_bool(0.3);
                let builder = TaskSpec::builder(next_id)
                    .priority(if spot { Priority::Spot } else { Priority::Hp })
                    .duration_secs(10_000);
                let spec = if fractional {
                    builder.gpus_per_pod(
                        GpuDemand::fraction(
                            *[0.25, 0.3, 0.5, 0.75]
                                .get(rng.gen_range(0..4usize))
                                .expect("static"),
                        )
                        .expect("valid"),
                    )
                } else {
                    builder.gpus_per_pod(GpuDemand::whole(rng.gen_range(1..9u32)))
                }
                .build()
                .expect("valid");
                let node = gfs_types::NodeId::new(rng.gen_range(0..node_count));
                if cluster
                    .start_task(spec.clone(), &[node], SimTime::from_secs(step), 0)
                    .is_ok()
                {
                    live.push(spec.id);
                    next_id += 1;
                }
            } else {
                let victim = live.swap_remove(rng.gen_range(0..live.len()));
                let is_spot = cluster
                    .running_task(victim)
                    .expect("tracked tasks are running")
                    .spec
                    .priority
                    .is_spot();
                if action < 8 && is_spot {
                    cluster
                        .evict_task(victim, SimTime::from_secs(step))
                        .expect("evictable");
                } else {
                    cluster
                        .finish_task(victim, SimTime::from_secs(step))
                        .expect("running");
                }
            }
            // verify: every indexed query equals the brute-force scan
            for need in [1u32, 2, 4, 8] {
                assert_eq!(
                    cluster.whole_fit_candidates(GpuModel::A100, need),
                    brute::whole_fit(&cluster, GpuModel::A100, need),
                    "whole-fit({need}) diverged at step {step}"
                );
            }
            for f in [0.2f64, 0.25, 0.5, 0.75, 0.9] {
                assert_eq!(
                    cluster.fraction_fit_candidates(GpuModel::A100, f),
                    brute::fraction_fit(&cluster, GpuModel::A100, f),
                    "fraction-fit({f}) diverged at step {step}"
                );
            }
            for node in 0..cluster.nodes().len() as u32 {
                let id = gfs_types::NodeId::new(node);
                let indexed: Vec<TaskId> = cluster
                    .spot_tasks_on(id)
                    .iter()
                    .map(|rt| rt.spec.id)
                    .collect();
                assert_eq!(
                    indexed,
                    brute::spot_on(&cluster, id),
                    "spot-on({node}) diverged"
                );
                assert_eq!(cluster.has_spot_on(id), !indexed.is_empty());
            }
            assert_eq!(cluster.fully_idle_nodes(), brute::fully_idle(&cluster));
            assert_eq!(
                cluster.preemption_candidates(GpuModel::A100, 4),
                brute::preemption(&cluster, GpuModel::A100, 4)
            );
            // no cross-model leakage
            assert!(cluster.whole_fit_candidates(GpuModel::H800, 1).is_empty());
            // O(1) whole-cluster and per-model totals match fresh scans
            brute::totals_consistent(&cluster);
        }
    });
}

/// A random but per-node-coherent cluster timeline: each node either
/// fails and recovers once, drains once, or stays untouched.
fn random_dynamics(rng: &mut ChaCha8Rng) -> DynamicsPlan {
    let mut events = Vec::new();
    for node in 0..4u32 {
        let id = gfs_types::NodeId::new(node);
        if rng.gen_bool(0.4) {
            let down = rng.gen_range(500..20_000u64);
            let outage = rng.gen_range(500..10_000u64);
            events.push(ClusterEvent::down(id, SimTime::from_secs(down)));
            events.push(ClusterEvent::up(id, SimTime::from_secs(down + outage)));
        } else if rng.gen_bool(0.5) {
            let at = rng.gen_range(500..20_000u64);
            events.push(ClusterEvent::drain(id, SimTime::from_secs(at), 600));
        }
    }
    DynamicsPlan::new(events).expect("per-node sequences are coherent")
}

fn random_trace(rng: &mut ChaCha8Rng) -> Vec<TaskSpec> {
    let n = rng.gen_range(8..18usize);
    (0..n)
        .map(|i| {
            let raw: u64 = rng.gen_range(0..u64::MAX);
            TaskSpec::builder(i as u64 + 1)
                .priority(if raw.is_multiple_of(3) {
                    Priority::Spot
                } else {
                    Priority::Hp
                })
                .pods((raw % 2 + 1) as u32)
                .gpus_per_pod(GpuDemand::whole((raw / 3 % 8 + 1) as u32))
                .duration_secs(60 + raw / 7 % 20_000)
                .submit_at(SimTime::from_secs(raw / 11 % 40_000))
                .checkpoint(CheckpointPlan::Periodic { interval: 1_800 })
                .build()
                .expect("valid")
        })
        .collect()
}

/// Interleaves random snapshot → restore points into live runs under
/// random cluster dynamics: every round-trip must be byte-identical
/// (snapshot → restore → snapshot), and the chopped-up run must land on
/// the uninterrupted run's exact state hash and `SimReport`.
#[test]
fn snapshot_restore_is_transparent_under_dynamics() {
    use gfs::sim::{ClusterService, ServiceSnapshot};
    for_all_cases("snapshot_restore_is_transparent_under_dynamics", |rng| {
        let tasks = random_trace(rng);
        let cfg = SimConfig {
            dynamics: random_dynamics(rng),
            max_time_secs: Some(10 * 24 * HOUR),
            ..SimConfig::default()
        };
        let cluster = Cluster::homogeneous(6, GpuModel::A100, 8);

        // golden: one uninterrupted service
        let mut sched = YarnCs::new();
        let mut svc = ClusterService::new(cluster.clone(), cfg.clone());
        svc.admit_tasks(tasks.clone());
        svc.start();
        svc.run_to_end(&mut sched);
        let golden_state = svc.snapshot(&sched).state_hash();
        let golden_report = svc.finish();

        // the same run chopped at random points by snapshot → restore
        let mut sched = YarnCs::new();
        let mut svc = ClusterService::new(cluster, cfg);
        svc.admit_tasks(tasks);
        svc.start();
        for _ in 0..rng.gen_range(1..4usize) {
            for _ in 0..rng.gen_range(1..30u64) {
                if !svc.step(&mut sched) {
                    break;
                }
            }
            let snap = svc.snapshot(&sched);
            let json = snap.to_json();
            let mut sched2 = YarnCs::new();
            let restored = ClusterService::restore(
                ServiceSnapshot::from_json(&json).expect("canonical JSON round-trips"),
                &mut sched2,
            )
            .expect("live snapshots restore");
            assert_eq!(
                restored.snapshot(&sched2).to_json(),
                json,
                "snapshot → restore → snapshot must be byte-identical"
            );
            svc = restored;
            sched = sched2;
        }
        svc.run_to_end(&mut sched);
        assert_eq!(
            svc.snapshot(&sched).state_hash(),
            golden_state,
            "restored runs converge to the golden state"
        );
        assert_eq!(svc.finish(), golden_report, "and to the golden report");
    });
}

/// Random damage to a live run's write-ahead journal — torn tails,
/// single-character flips, duplicated records — is always detected by
/// the parser, and a torn tail still yields the intact prefix.
#[test]
fn journal_corruption_is_always_detected() {
    use gfs::sim::{parse_journal, ClusterService, JournalError};
    for_all_cases("journal_corruption_is_always_detected", |rng| {
        let tasks = random_trace(rng);
        let cfg = SimConfig {
            dynamics: random_dynamics(rng),
            max_time_secs: Some(10 * 24 * HOUR),
            ..SimConfig::default()
        };
        let mut sched = YarnCs::new();
        let mut svc = ClusterService::new(Cluster::homogeneous(6, GpuModel::A100, 8), cfg);
        svc.enable_journal();
        let cut = tasks.len() / 2;
        svc.admit_tasks(tasks[..cut].to_vec());
        svc.start();
        for _ in 0..rng.gen_range(1..20u64) {
            if !svc.step(&mut sched) {
                break;
            }
        }
        svc.admit_tasks(tasks[cut..].to_vec());
        let text = svc.journal().expect("enabled").text().to_string();
        let (records, err) = parse_journal(&text);
        assert!(err.is_none(), "an undamaged journal parses: {err:?}");
        assert_eq!(records.len(), 3, "tasks + start + late tasks");

        // torn tail: the final record is damaged, the prefix survives
        let tear = rng.gen_range(2..10usize);
        let (prefix, err) = parse_journal(&text[..text.len() - tear]);
        assert!(
            matches!(err, Some(JournalError::Truncated { .. })),
            "torn tail flagged: {err:?}"
        );
        assert_eq!(prefix.len(), records.len() - 1);

        // flip one digit anywhere: record CRCs (or the parse) catch it
        let digits: Vec<usize> = text
            .char_indices()
            .filter(|(_, c)| c.is_ascii_digit())
            .map(|(i, _)| i)
            .collect();
        let pos = digits[rng.gen_range(0..digits.len())];
        let mut flipped = text.clone().into_bytes();
        flipped[pos] = b'0' + (flipped[pos] - b'0' + 1) % 10;
        let (_, err) = parse_journal(&String::from_utf8(flipped).expect("ascii"));
        assert!(err.is_some(), "a single flipped digit must be detected");

        // duplicate a record: replay must reject the repeated sequence
        let lines: Vec<&str> = text.lines().collect();
        let dup = rng.gen_range(0..lines.len());
        let mut doubled: Vec<&str> = lines[..=dup].to_vec();
        doubled.push(lines[dup]);
        doubled.extend_from_slice(&lines[dup + 1..]);
        let (_, err) = parse_journal(&(doubled.join("\n") + "\n"));
        assert!(
            matches!(
                err,
                Some(JournalError::DuplicateSeq { seq, .. }) if seq == dup as u64 + 1
            ),
            "duplicated record flagged: {err:?}"
        );
    });
}

#[test]
fn gaussian_quantile_monotone_in_p() {
    for_all_cases("gaussian_quantile_monotone_in_p", |rng| {
        let mu = rng.gen_range(-100.0..100.0f64);
        let sigma = rng.gen_range(0.01..50.0f64);
        let p1 = rng.gen_range(0.01..0.98f64);
        let p2 = p1 + 0.01;
        let q1 = gfs::forecast::stats::gaussian_quantile(p1, mu, sigma);
        let q2 = gfs::forecast::stats::gaussian_quantile(p2, mu, sigma);
        assert!(q2 >= q1);
    });
}

#[test]
fn moving_average_stays_in_range() {
    for_all_cases("moving_average_stays_in_range", |rng| {
        let n = rng.gen_range(1..200usize);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        let trend = gfs::forecast::decompose::moving_average(&xs, 25);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for t in trend {
            assert!(t >= min - 1e-9 && t <= max + 1e-9);
        }
    });
}
