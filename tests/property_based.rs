//! Property-based tests over the core invariants: cluster capacity
//! accounting, checkpoint arithmetic, quota bounds and simulator
//! conservation laws.

use gfs::prelude::*;
use gfs_types::CheckpointPlan;
use proptest::prelude::*;

#[allow(dead_code)]
fn arb_task(id: u64) -> impl Strategy<Value = TaskSpec> {
    (
        prop_oneof![Just(Priority::Hp), Just(Priority::Spot)],
        1u32..=3,
        1u32..=8,
        60u64..20_000,
        0u64..40_000,
    )
        .prop_map(move |(priority, pods, gpus, dur, submit)| {
            TaskSpec::builder(id)
                .priority(priority)
                .pods(pods)
                .gpus_per_pod(GpuDemand::whole(gpus))
                .duration_secs(dur)
                .submit_at(SimTime::from_secs(submit))
                .checkpoint(CheckpointPlan::Periodic { interval: 1_800 })
                .build()
                .expect("generated specs are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn allocation_never_exceeds_capacity(tasks in prop::collection::vec((1u32..=8, 0u64..10_000), 1..40)) {
        let mut cluster = Cluster::homogeneous(4, GpuModel::A100, 8);
        let capacity = cluster.capacity(None);
        for (i, (gpus, at)) in tasks.into_iter().enumerate() {
            let spec = TaskSpec::builder(i as u64 + 1)
                .priority(Priority::Spot)
                .gpus_per_pod(GpuDemand::whole(gpus))
                .duration_secs(1_000)
                .build()
                .expect("valid");
            // first-fit attempt; failures are fine
            let node = cluster
                .nodes()
                .iter()
                .find(|n| n.idle_gpus() >= gpus)
                .map(gfs::cluster::Node::id);
            if let Some(node) = node {
                cluster.start_task(spec, &[node], SimTime::from_secs(at), 0).expect("fits");
            }
            prop_assert!(cluster.hp_allocated(None) + cluster.spot_allocated(None) <= capacity + 1e-9);
            prop_assert!(f64::from(cluster.idle_gpus(None)) <= capacity);
        }
    }

    #[test]
    fn checkpoint_preserved_progress_is_monotone_and_bounded(
        interval in 1u64..5_000,
        carried in 0u64..10_000,
        executed in 0u64..10_000,
    ) {
        let plan = CheckpointPlan::Periodic { interval };
        let preserved = plan.preserved_progress(carried, executed);
        prop_assert!(preserved >= carried, "never loses pre-existing progress");
        prop_assert!(preserved <= carried + executed, "never invents progress");
        prop_assert_eq!(plan.wasted_work(carried, executed), carried + executed - preserved);
    }

    #[test]
    fn quota_stays_within_physical_bounds(
        demand in 0.0f64..5_000.0,
        evictions in 0usize..30,
        starts in 0usize..30,
    ) {
        let cluster = Cluster::homogeneous(16, GpuModel::A100, 8);
        let mut sqa = gfs::core::SpotQuotaAllocator::new(GfsParams::default());
        let now = SimTime::from_hours(1);
        for i in 0..evictions {
            sqa.record_eviction(TaskId::new(i as u64), now);
        }
        for i in 0..starts {
            sqa.record_spot_start(TaskId::new(1_000 + i as u64), now, 100);
        }
        sqa.update(now, &cluster, demand);
        prop_assert!(sqa.quota() >= 0.0);
        prop_assert!(sqa.quota() <= cluster.capacity(None) + 1e-9);
        let (lo, hi) = GfsParams::default().eta_bounds;
        prop_assert!(sqa.eta() >= lo && sqa.eta() <= hi);
    }

    #[test]
    fn simulator_conserves_tasks_and_work(tasks_in in prop::collection::vec(any::<u64>(), 10..30)) {
        let mut tasks = Vec::new();
        // deterministic pseudo-random small workload derived from the inputs
        for (i, raw) in tasks_in.iter().enumerate() {
            let priority = if raw % 3 == 0 { Priority::Spot } else { Priority::Hp };
            let pods = (raw % 3 + 1) as u32;
            let gpus = (raw / 3 % 8 + 1) as u32;
            let dur = 60 + raw / 7 % 20_000;
            let submit = raw / 11 % 40_000;
            tasks.push(
                TaskSpec::builder(i as u64 + 1)
                    .priority(priority)
                    .pods(pods)
                    .gpus_per_pod(GpuDemand::whole(gpus))
                    .duration_secs(dur)
                    .submit_at(SimTime::from_secs(submit))
                    .checkpoint(CheckpointPlan::Periodic { interval: 1_800 })
                    .build()
                    .expect("valid"),
            );
        }
        let cluster = Cluster::homogeneous(6, GpuModel::A100, 8);
        let mut sched = YarnCs::new();
        let report = run(
            cluster,
            &mut sched,
            tasks.clone(),
            &SimConfig { max_time_secs: Some(10 * 24 * HOUR), ..SimConfig::default() },
        );
        prop_assert_eq!(report.tasks.len(), tasks.len(), "every submission recorded");
        for t in &report.tasks {
            if let Some(jct) = t.jct() {
                prop_assert!(jct >= t.work_secs, "completion time covers the work");
            }
            prop_assert!(t.runs >= t.evictions, "each eviction ends one run");
        }
        prop_assert_eq!(report.failed_commits, 0u64);
    }

    #[test]
    fn gaussian_quantile_monotone_in_p(
        mu in -100.0f64..100.0,
        sigma in 0.01f64..50.0,
        p1 in 0.01f64..0.98,
    ) {
        let p2 = p1 + 0.01;
        let q1 = gfs::forecast::stats::gaussian_quantile(p1, mu, sigma);
        let q2 = gfs::forecast::stats::gaussian_quantile(p2, mu, sigma);
        prop_assert!(q2 >= q1);
    }

    #[test]
    fn moving_average_stays_in_range(xs in prop::collection::vec(0.0f64..100.0, 1..200)) {
        let trend = gfs::forecast::decompose::moving_average(&xs, 25);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for t in trend {
            prop_assert!(t >= min - 1e-9 && t <= max + 1e-9);
        }
    }
}
