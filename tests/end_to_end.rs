//! End-to-end integration tests spanning the whole workspace: generated
//! workloads driven through the simulator with GFS and every baseline.

use gfs::prelude::*;
use gfs::scenario;

fn small_workload(seed: u64, spot_scale: f64) -> Vec<TaskSpec> {
    workload(seed, spot_scale, 0.55)
}

/// A hotter mix that forces preemption pressure.
fn pressured_workload(seed: u64, spot_scale: f64) -> Vec<TaskSpec> {
    workload(seed, spot_scale, 0.80)
}

fn workload(seed: u64, spot_scale: f64, hp_load: f64) -> Vec<TaskSpec> {
    let cfg = WorkloadConfig {
        horizon_secs: 24 * HOUR,
        spot_scale,
        seed,
        ..WorkloadConfig::default()
    }
    .sized_for(128.0, hp_load, 0.12);
    WorkloadGenerator::new(cfg).generate()
}

fn sim(scheduler: &mut dyn Scheduler, tasks: Vec<TaskSpec>) -> SimReport {
    let cluster = Cluster::homogeneous(16, GpuModel::A100, 8);
    run(
        cluster,
        scheduler,
        tasks,
        &SimConfig {
            max_time_secs: Some(5 * 24 * HOUR),
            ..SimConfig::default()
        },
    )
}

#[test]
fn every_scheduler_completes_the_hp_workload() {
    let tasks = small_workload(1, 1.0);
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(YarnCs::new()),
        Box::new(Chronus::new()),
        Box::new(Lyra::new()),
        Box::new(Fgd::new()),
        Box::new(GfsScheduler::with_defaults()),
    ];
    for mut s in schedulers {
        let name = s.name().to_string();
        let report = sim(s.as_mut(), tasks.clone());
        assert!(
            report.completion_rate(Priority::Hp) > 0.95,
            "{name}: HP completion {:.2}",
            report.completion_rate(Priority::Hp)
        );
        assert_eq!(report.failed_commits, 0, "{name}: invalid decisions");
    }
}

#[test]
fn hp_tasks_are_never_evicted_under_any_scheduler() {
    let tasks = small_workload(2, 2.0);
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(YarnCs::new()),
        Box::new(Fgd::new()),
        Box::new(GfsScheduler::with_defaults()),
    ];
    for mut s in schedulers {
        let report = sim(s.as_mut(), tasks.clone());
        for t in report.tasks.iter().filter(|t| t.priority.is_hp()) {
            assert_eq!(t.evictions, 0, "HP task {} was evicted", t.id);
        }
    }
}

#[test]
fn gfs_evicts_less_than_yarn_under_pressure() {
    let tasks = pressured_workload(3, 3.0);
    let yarn = sim(&mut YarnCs::new(), tasks.clone());
    assert!(
        yarn.eviction_rate() > 0.05,
        "scenario must create pressure, got {:.3}",
        yarn.eviction_rate()
    );
    let mut gfs = scenario::gfs_full(GfsParams::default(), 2, 3, 0.80 * 128.0);
    let gfs_report = sim(&mut gfs, tasks);
    assert!(
        gfs_report.eviction_rate() < yarn.eviction_rate(),
        "GFS {:.3} must evict less than YARN {:.3}",
        gfs_report.eviction_rate(),
        yarn.eviction_rate()
    );
}

#[test]
fn simulation_is_deterministic_end_to_end() {
    let tasks = small_workload(4, 1.0);
    let run_once = || {
        let mut gfs = GfsScheduler::with_defaults();
        let report = sim(&mut gfs, tasks.clone());
        (
            report.makespan,
            report.eviction_rate(),
            report.mean_jct(Priority::Hp),
            report.tasks.len(),
        )
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn lyra_trades_queueing_for_low_evictions() {
    let tasks = pressured_workload(5, 3.0);
    let yarn = sim(&mut YarnCs::new(), tasks.clone());
    let lyra = sim(&mut Lyra::new(), tasks);
    assert!(
        lyra.eviction_rate() <= yarn.eviction_rate(),
        "Lyra {:.3} vs YARN {:.3}",
        lyra.eviction_rate(),
        yarn.eviction_rate()
    );
    assert!(
        lyra.mean_jqt(Priority::Spot) >= yarn.mean_jqt(Priority::Spot),
        "conservative loans queue spot for longer"
    );
}

#[test]
fn work_is_conserved_across_preemptions() {
    // every completed task's wall-clock run time must cover its work
    let tasks = small_workload(6, 2.0);
    let report = sim(&mut YarnCs::new(), tasks);
    for t in report.tasks.iter().filter(|t| t.completed()) {
        let jct = t.jct().expect("completed");
        assert!(
            jct >= t.work_secs,
            "{}: finished in {jct}s with {}s of work",
            t.id,
            t.work_secs
        );
    }
}

#[test]
fn spot_queue_times_accumulate_segments() {
    let tasks = small_workload(7, 4.0);
    let report = sim(&mut YarnCs::new(), tasks);
    // any task evicted at least once and completed must have runs = evictions + 1
    for t in report
        .tasks
        .iter()
        .filter(|t| t.completed() && t.evictions > 0)
    {
        assert_eq!(t.runs, t.evictions + 1, "{}", t.id);
    }
}
