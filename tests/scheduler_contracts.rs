//! Contract tests every scheduler implementation must satisfy: decisions
//! reference real nodes, respect the task's GPU model, never preempt HP
//! tasks, are reproducible from identical state, and absorb the full
//! cluster-timeline event stream with a queue order that stays total.

use gfs::prelude::*;
use gfs_types::CheckpointPlan;

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(YarnCs::new()),
        Box::new(Chronus::new()),
        Box::new(Lyra::new()),
        Box::new(Fgd::new()),
        Box::new(GfsScheduler::with_defaults()),
        Box::new(PtsScheduler::new(GfsParams::default())),
    ]
}

fn loaded_cluster() -> Cluster {
    let mut c = Cluster::homogeneous(6, GpuModel::A100, 8);
    for (i, node) in [0u32, 1, 2, 3].iter().enumerate() {
        let spot = TaskSpec::builder(100 + i as u64)
            .priority(Priority::Spot)
            .gpus_per_pod(GpuDemand::whole(6))
            .duration_secs(50_000)
            .checkpoint(CheckpointPlan::Periodic { interval: 3_600 })
            .build()
            .expect("valid");
        c.start_task(
            spot,
            &[NodeId::new(*node)],
            SimTime::from_secs(i as u64 * 700),
            0,
        )
        .expect("fits");
    }
    let hp = TaskSpec::builder(200)
        .priority(Priority::Hp)
        .gpus_per_pod(GpuDemand::whole(4))
        .duration_secs(50_000)
        .build()
        .expect("valid");
    c.start_task(hp, &[NodeId::new(4)], SimTime::ZERO, 0)
        .expect("fits");
    c
}

fn warmed(mut s: Box<dyn Scheduler>, c: &Cluster) -> Box<dyn Scheduler> {
    s.on_tick(SimTime::from_secs(300), c);
    s
}

#[test]
fn decisions_reference_valid_nodes_with_matching_model() {
    let c = loaded_cluster();
    let task = TaskSpec::builder(1)
        .priority(Priority::Hp)
        .pods(2)
        .gpus_per_pod(GpuDemand::whole(2))
        .duration_secs(600)
        .build()
        .expect("valid");
    for s in schedulers() {
        let mut s = warmed(s, &c);
        let name = s.name().to_string();
        if let Some(d) = s.schedule(&task, &c, SimTime::from_secs(400)) {
            assert_eq!(d.pod_nodes.len(), 2, "{name}: one node per pod");
            for n in &d.pod_nodes {
                let node = c
                    .node(*n)
                    .unwrap_or_else(|_| panic!("{name}: unknown node {n}"));
                assert_eq!(node.model(), GpuModel::A100, "{name}: wrong model");
            }
        }
    }
}

#[test]
fn preemption_victims_are_running_spot_tasks() {
    let c = loaded_cluster();
    // a task large enough to force preemption on every policy that supports it
    let big = TaskSpec::builder(2)
        .priority(Priority::Hp)
        .pods(3)
        .gpus_per_pod(GpuDemand::whole(8))
        .duration_secs(600)
        .build()
        .expect("valid");
    for s in schedulers() {
        let mut s = warmed(s, &c);
        let name = s.name().to_string();
        if let Some(d) = s.schedule(&big, &c, SimTime::from_hours(2)) {
            for v in &d.preemptions {
                let rt = c
                    .running_task(*v)
                    .unwrap_or_else(|| panic!("{name}: victim {v} not running"));
                assert!(rt.spec.priority.is_spot(), "{name}: evicted an HP task");
            }
        }
    }
}

#[test]
fn spot_tasks_never_trigger_preemptions() {
    let c = loaded_cluster();
    let spot = TaskSpec::builder(3)
        .priority(Priority::Spot)
        .gpus_per_pod(GpuDemand::whole(8))
        .duration_secs(600)
        .guarantee_secs(3_600)
        .build()
        .expect("valid");
    for s in schedulers() {
        let mut s = warmed(s, &c);
        let name = s.name().to_string();
        if let Some(d) = s.schedule(&spot, &c, SimTime::from_secs(400)) {
            assert!(
                d.preemptions.is_empty(),
                "{name}: spot task preempted others"
            );
        }
    }
}

#[test]
fn identical_state_yields_identical_decisions() {
    let c = loaded_cluster();
    let task = TaskSpec::builder(4)
        .priority(Priority::Hp)
        .gpus_per_pod(GpuDemand::whole(8))
        .duration_secs(600)
        .build()
        .expect("valid");
    for make in 0..6usize {
        let build = |i: usize| -> Box<dyn Scheduler> {
            match i {
                0 => Box::new(YarnCs::new()),
                1 => Box::new(Chronus::new()),
                2 => Box::new(Lyra::new()),
                3 => Box::new(Fgd::new()),
                4 => Box::new(PtsScheduler::new(GfsParams::default())),
                _ => Box::new(GfsScheduler::with_defaults()),
            }
        };
        let mut a = warmed(build(make), &c);
        let mut b = warmed(build(make), &c);
        let da = a.schedule(&task, &c, SimTime::from_hours(1));
        let db = b.schedule(&task, &c, SimTime::from_hours(1));
        assert_eq!(da, db, "{} is non-deterministic", a.name());
    }
}

#[test]
fn dynamics_events_never_panic_and_queue_cmp_stays_total() {
    // every scheduler must absorb the full cluster-timeline event set —
    // drain notices, scale-out, displacement — without panicking, and its
    // queue comparator must remain a (static, spec-derived) total order
    // afterwards: antisymmetric, transitive, reflexively equal.
    let mut c = loaded_cluster();
    c.drain_node(NodeId::new(3), SimTime::from_hours(2))
        .expect("drainable");
    let added = c.add_node(GpuModel::A100, 8);
    let displaced = c
        .fail_node(NodeId::new(0), SimTime::from_secs(4_000))
        .expect("up");
    let now = SimTime::from_secs(4_000);
    let events = [
        TaskEvent::DrainNotice {
            node: NodeId::new(3),
            deadline: SimTime::from_hours(2),
            at: now,
        },
        TaskEvent::NodeAdded {
            node: added,
            added_gpus: 8,
            at: now,
        },
        TaskEvent::Displaced {
            task: displaced[0].task.spec.id,
            priority: displaced[0].task.spec.priority,
            at: now,
        },
        TaskEvent::NodeDown {
            node: NodeId::new(0),
            lost_gpus: 8,
            at: now,
        },
        TaskEvent::NodeUp {
            node: NodeId::new(0),
            restored_gpus: 8,
            at: now,
        },
    ];
    // a spec sample diverse enough to exercise every comparator branch
    let sample: Vec<TaskSpec> = (0..12)
        .map(|i| {
            TaskSpec::builder(500 + i)
                .priority(if i % 3 == 0 {
                    Priority::Spot
                } else {
                    Priority::Hp
                })
                .pods(1 + (i as u32 % 3))
                .gpus_per_pod(GpuDemand::whole(1 + (i as u32 % 4)))
                .duration_secs(600 + i * 37)
                .submit_at(SimTime::from_secs(i * 11))
                .build()
                .expect("valid")
        })
        .collect();
    for s in schedulers() {
        let mut s = warmed(s, &c);
        let name = s.name().to_string();
        for e in &events {
            s.on_event(e, &c);
        }
        // the scheduler still answers placement questions after the storm
        let probe = TaskSpec::builder(9_999)
            .priority(Priority::Hp)
            .gpus_per_pod(GpuDemand::whole(1))
            .duration_secs(600)
            .build()
            .expect("valid");
        let _ = s.schedule(&probe, &c, now);
        // total order: reflexive equality, antisymmetry, transitivity
        for a in &sample {
            assert_eq!(
                s.queue_cmp(a, a),
                std::cmp::Ordering::Equal,
                "{name}: irreflexive"
            );
            for b in &sample {
                assert_eq!(
                    s.queue_cmp(a, b),
                    s.queue_cmp(b, a).reverse(),
                    "{name}: asymmetric on {:?}/{:?}",
                    a.id,
                    b.id
                );
                for t in &sample {
                    if s.queue_cmp(a, b) != std::cmp::Ordering::Greater
                        && s.queue_cmp(b, t) != std::cmp::Ordering::Greater
                    {
                        assert_ne!(
                            s.queue_cmp(a, t),
                            std::cmp::Ordering::Greater,
                            "{name}: intransitive on {:?}/{:?}/{:?}",
                            a.id,
                            b.id,
                            t.id
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn gang_pods_never_oversubscribe_one_node() {
    // a 2×8 gang on a cluster with exactly one empty node must either span
    // two feasible nodes or be refused — never stack 16 GPUs on one node
    let c = loaded_cluster(); // node 5 idle (8 GPUs), others partially full
    let gang = TaskSpec::builder(5)
        .priority(Priority::Hp)
        .pods(2)
        .gpus_per_pod(GpuDemand::whole(8))
        .duration_secs(600)
        .build()
        .expect("valid");
    for s in schedulers() {
        let mut s = warmed(s, &c);
        let name = s.name().to_string();
        if let Some(d) = s.schedule(&gang, &c, SimTime::from_hours(1)) {
            // commit through the cluster to validate capacity atomically
            let mut c2 = c.clone();
            for v in &d.preemptions {
                c2.evict_task(*v, SimTime::from_hours(1))
                    .expect("victim evictable");
            }
            c2.start_task(gang.clone(), &d.pod_nodes, SimTime::from_hours(1), 0)
                .unwrap_or_else(|e| panic!("{name}: invalid gang decision: {e}"));
        }
    }
}
