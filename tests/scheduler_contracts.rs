//! Contract tests every scheduler implementation must satisfy: decisions
//! reference real nodes, respect the task's GPU model, never preempt HP
//! tasks, and are reproducible from identical state.

use gfs::prelude::*;
use gfs_types::CheckpointPlan;

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(YarnCs::new()),
        Box::new(Chronus::new()),
        Box::new(Lyra::new()),
        Box::new(Fgd::new()),
        Box::new(GfsScheduler::with_defaults()),
    ]
}

fn loaded_cluster() -> Cluster {
    let mut c = Cluster::homogeneous(6, GpuModel::A100, 8);
    for (i, node) in [0u32, 1, 2, 3].iter().enumerate() {
        let spot = TaskSpec::builder(100 + i as u64)
            .priority(Priority::Spot)
            .gpus_per_pod(GpuDemand::whole(6))
            .duration_secs(50_000)
            .checkpoint(CheckpointPlan::Periodic { interval: 3_600 })
            .build()
            .expect("valid");
        c.start_task(spot, &[NodeId::new(*node)], SimTime::from_secs(i as u64 * 700), 0)
            .expect("fits");
    }
    let hp = TaskSpec::builder(200)
        .priority(Priority::Hp)
        .gpus_per_pod(GpuDemand::whole(4))
        .duration_secs(50_000)
        .build()
        .expect("valid");
    c.start_task(hp, &[NodeId::new(4)], SimTime::ZERO, 0).expect("fits");
    c
}

fn warmed(mut s: Box<dyn Scheduler>, c: &Cluster) -> Box<dyn Scheduler> {
    s.on_tick(SimTime::from_secs(300), c);
    s
}

#[test]
fn decisions_reference_valid_nodes_with_matching_model() {
    let c = loaded_cluster();
    let task = TaskSpec::builder(1)
        .priority(Priority::Hp)
        .pods(2)
        .gpus_per_pod(GpuDemand::whole(2))
        .duration_secs(600)
        .build()
        .expect("valid");
    for s in schedulers() {
        let mut s = warmed(s, &c);
        let name = s.name().to_string();
        if let Some(d) = s.schedule(&task, &c, SimTime::from_secs(400)) {
            assert_eq!(d.pod_nodes.len(), 2, "{name}: one node per pod");
            for n in &d.pod_nodes {
                let node = c.node(*n).unwrap_or_else(|_| panic!("{name}: unknown node {n}"));
                assert_eq!(node.model(), GpuModel::A100, "{name}: wrong model");
            }
        }
    }
}

#[test]
fn preemption_victims_are_running_spot_tasks() {
    let c = loaded_cluster();
    // a task large enough to force preemption on every policy that supports it
    let big = TaskSpec::builder(2)
        .priority(Priority::Hp)
        .pods(3)
        .gpus_per_pod(GpuDemand::whole(8))
        .duration_secs(600)
        .build()
        .expect("valid");
    for s in schedulers() {
        let mut s = warmed(s, &c);
        let name = s.name().to_string();
        if let Some(d) = s.schedule(&big, &c, SimTime::from_hours(2)) {
            for v in &d.preemptions {
                let rt = c
                    .running_task(*v)
                    .unwrap_or_else(|| panic!("{name}: victim {v} not running"));
                assert!(rt.spec.priority.is_spot(), "{name}: evicted an HP task");
            }
        }
    }
}

#[test]
fn spot_tasks_never_trigger_preemptions() {
    let c = loaded_cluster();
    let spot = TaskSpec::builder(3)
        .priority(Priority::Spot)
        .gpus_per_pod(GpuDemand::whole(8))
        .duration_secs(600)
        .guarantee_secs(3_600)
        .build()
        .expect("valid");
    for s in schedulers() {
        let mut s = warmed(s, &c);
        let name = s.name().to_string();
        if let Some(d) = s.schedule(&spot, &c, SimTime::from_secs(400)) {
            assert!(d.preemptions.is_empty(), "{name}: spot task preempted others");
        }
    }
}

#[test]
fn identical_state_yields_identical_decisions() {
    let c = loaded_cluster();
    let task = TaskSpec::builder(4)
        .priority(Priority::Hp)
        .gpus_per_pod(GpuDemand::whole(8))
        .duration_secs(600)
        .build()
        .expect("valid");
    for make in 0..5usize {
        let build = |i: usize| -> Box<dyn Scheduler> {
            match i {
                0 => Box::new(YarnCs::new()),
                1 => Box::new(Chronus::new()),
                2 => Box::new(Lyra::new()),
                3 => Box::new(Fgd::new()),
                _ => Box::new(GfsScheduler::with_defaults()),
            }
        };
        let mut a = warmed(build(make), &c);
        let mut b = warmed(build(make), &c);
        let da = a.schedule(&task, &c, SimTime::from_hours(1));
        let db = b.schedule(&task, &c, SimTime::from_hours(1));
        assert_eq!(da, db, "{} is non-deterministic", a.name());
    }
}

#[test]
fn gang_pods_never_oversubscribe_one_node() {
    // a 2×8 gang on a cluster with exactly one empty node must either span
    // two feasible nodes or be refused — never stack 16 GPUs on one node
    let c = loaded_cluster(); // node 5 idle (8 GPUs), others partially full
    let gang = TaskSpec::builder(5)
        .priority(Priority::Hp)
        .pods(2)
        .gpus_per_pod(GpuDemand::whole(8))
        .duration_secs(600)
        .build()
        .expect("valid");
    for s in schedulers() {
        let mut s = warmed(s, &c);
        let name = s.name().to_string();
        if let Some(d) = s.schedule(&gang, &c, SimTime::from_hours(1)) {
            // commit through the cluster to validate capacity atomically
            let mut c2 = c.clone();
            for v in &d.preemptions {
                c2.evict_task(*v, SimTime::from_hours(1)).expect("victim evictable");
            }
            c2.start_task(gang.clone(), &d.pod_nodes, SimTime::from_hours(1), 0)
                .unwrap_or_else(|e| panic!("{name}: invalid gang decision: {e}"));
        }
    }
}
