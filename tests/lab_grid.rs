//! Determinism and pinning tests for the `gfs::lab` experiment engine:
//! a grid run must produce byte-identical aggregated JSON for any worker
//! count (results are collected by run index, never completion order),
//! and one grid summary is golden-pinned so aggregation semantics cannot
//! drift silently.

mod common;

use common::fnv1a;
use gfs::lab::{ClusterShape, Grid, SchedulerSpec, Threads, WorkloadAxis};
use gfs::prelude::*;

/// A 2 (schedulers) × 3 (workloads) grid, 4 seeds per cell: 24 runs.
fn grid_2x3x4() -> Grid {
    let workloads = [("low", 1.0), ("medium", 2.0), ("high", 4.0)].map(|(name, spot_scale)| {
        WorkloadAxis::generated(
            format!("{name}-spot"),
            WorkloadConfig {
                hp_tasks: 30,
                spot_tasks: 12,
                spot_scale,
                horizon_secs: 8 * HOUR,
                ..WorkloadConfig::default()
            },
        )
    });
    Grid::new()
        .schedulers([SchedulerSpec::yarn_cs(), SchedulerSpec::fgd()])
        .shape(ClusterShape::a100(6, 8))
        .workloads(workloads)
        .seeds([1, 2, 3, 4])
        .sim(SimConfig {
            max_time_secs: Some(72 * HOUR),
            ..SimConfig::default()
        })
}

#[test]
fn grid_json_identical_across_thread_counts() {
    let grid = grid_2x3x4();
    let serial = grid.run(Threads::Fixed(1)).report.to_json();
    let parallel = grid.run(Threads::Fixed(8)).report.to_json();
    assert_eq!(serial.len(), parallel.len());
    assert_eq!(
        serial, parallel,
        "thread count leaked into aggregated output"
    );
    // and the enumeration is complete: 6 cells of 4 seeds each
    let report = gfs::lab::GridReport::from_json(&serial).expect("round-trips");
    assert_eq!(report.cells.len(), 6);
    assert!(report.cells.iter().all(|c| c.seeds == [1, 2, 3, 4]));
    assert!(report.cells.iter().all(|c| c.runs.len() == 4));
}

#[test]
fn golden_grid_summary_pinned() {
    let result = grid_2x3x4().run(Threads::Auto);
    let json = result.report.to_json();
    if std::env::var("GFS_PRINT_GOLDEN").is_ok() {
        println!("GOLDEN_GRID = {}", fnv1a(&json));
    }
    assert_eq!(
        fnv1a(&json),
        GOLDEN_GRID,
        "aggregated grid output drifted — scheduling, summary metrics or \
         aggregation semantics changed (update the pin only if intentional)"
    );
}

/// Captured at PR 3 after the grid schema grew the fault axis label and
/// the availability/displacement metrics (the underlying *scheduling*
/// outcomes are separately pinned unchanged by `tests/golden_report.rs`);
/// any drift from here means a behaviour change. To regenerate
/// intentionally: `GFS_PRINT_GOLDEN=1 cargo test golden_grid -- --nocapture`.
const GOLDEN_GRID: u64 = 471_617_017_682_756_731;

#[test]
fn replicated_cells_have_spread_statistics() {
    let result = grid_2x3x4().run(Threads::Auto);
    let cell = &result.report.cells[0];
    let stats = cell.metric("hp_mean_jct_s").expect("known metric");
    assert!(stats.min <= stats.median && stats.median <= stats.max);
    assert!(
        stats.iqr > 0.0,
        "four distinct seeds should produce distinct JCTs (iqr = {})",
        stats.iqr
    );
    assert!(cell.median("hp_completion") > 0.0);
}
