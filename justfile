# Developer entry points. `just` (https://github.com/casey/just) or copy the
# recipes by hand — each is a single cargo invocation.

# Build, test, lint — the full CI gate.
ci: build test clippy bench-smoke lab-smoke lab-churn-smoke lab-dynamics-smoke

# Release build of the whole workspace.
build:
    cargo build --release --workspace

# Tier-1 test suite.
test:
    cargo test --workspace -q

# Lint with warnings denied (kept at zero).
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Short-mode benchmark smoke run (seconds, not minutes).
bench-smoke:
    GFS_BENCH_SHORT=1 GFS_BENCH_TAG=ci-smoke cargo bench -p gfs-bench

# Tiny lab grid (4 baselines × 3 seeds) through the parallel experiment
# engine, with a serial re-run asserting byte-identical aggregation.
lab-smoke:
    GFS_LAB_SMOKE=1 GFS_LAB_COMPARE=1 cargo run --release -p gfs-bench --bin lab_faceoff

# Tiny faulted heterogeneous grid (2 schedulers × 3 fault rates × 2 seeds)
# with the serial == parallel assertion: churn must stay deterministic.
lab-churn-smoke:
    GFS_LAB_SMOKE=1 GFS_LAB_COMPARE=1 cargo run --release -p gfs-bench --bin lab_churn

# Tiny cluster-timeline grid (drains + correlated racks + autoscale) with
# the serial == parallel assertion: the unified dynamics must stay
# deterministic.
lab-dynamics-smoke:
    GFS_LAB_SMOKE=1 GFS_LAB_COMPARE=1 cargo run --release -p gfs-bench --bin lab_dynamics

# Full benchmark suites; writes BENCH_*.json at the repo root.
bench tag="local":
    GFS_BENCH_TAG={{tag}} cargo bench -p gfs-bench

# Hot-path component breakdown for the forecast training loop.
profile-forecast:
    cargo run --release -p gfs-bench --bin profile_forecast
