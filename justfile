# Developer entry points. `just` (https://github.com/casey/just) or copy the
# recipes by hand — each is a single cargo invocation (or a small loop).

# Build, test, lint, gate — the full CI pipeline.
ci: fmt build test clippy lint bench-smoke bench-gate lab-smokes examples-smoke

# Formatting gate (no diffs tolerated).
fmt:
    cargo fmt --all -- --check

# Release build of the whole workspace.
build:
    cargo build --release --workspace

# Tier-1 test suite.
test:
    cargo test --workspace -q

# Lint with warnings denied (kept at zero).
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Workspace determinism/golden-pin static analysis (gfs_lint self-scan):
# hard-fails when any per-(path, rule) finding count exceeds the committed
# LINT_BASELINE.json. Std-only, offline, sub-second.
lint:
    cargo run --release -q -p gfs-lint --bin gfs_lint -- check

# Re-record the accepted lint debt after fixing findings (ratchet down).
lint-baseline:
    cargo run --release -q -p gfs-lint --bin gfs_lint -- record

# Short-mode benchmark smoke run (seconds, not minutes).
bench-smoke:
    GFS_BENCH_SHORT=1 GFS_BENCH_TAG=ci-smoke cargo bench -p gfs-bench

# Regression gate over the smoke run: diffs BENCH_*.json against the
# committed BENCH_*.baseline.json with a spread-aware tolerance and
# hard-fails only on >2.5x regressions. Run bench-smoke first.
bench-gate:
    cargo run --release -p gfs-bench --bin bench_gate

# Every lab smoke in one pass, discovered from the bin list — a new
# lab_*.rs bin is picked up automatically, so it cannot silently miss CI
# wiring. Each bin runs its tiny grid with the serial == parallel
# assertion (deterministic aggregation for any thread count).
lab-smokes:
    set -e; for src in crates/bench/src/bin/lab_*.rs; do \
        bin=$(basename "$src" .rs); \
        echo "== $bin"; \
        GFS_LAB_SMOKE=1 GFS_LAB_COMPARE=1 cargo run --release -p gfs-bench --bin "$bin"; \
    done

# Crash-injection sweep on its own: kill live services at every crash
# point of the grid and require bit-identical recovery (also part of
# lab-smokes via bin discovery).
recovery-smoke:
    GFS_LAB_SMOKE=1 GFS_LAB_COMPARE=1 cargo run --release -p gfs-bench --bin lab_recovery

# Examples must keep running as the APIs evolve: drive the quickstart,
# the maintenance-wave walkthrough, the churn-policy comparison, the
# crash-recovery demo and the spot-market walkthrough in release
# (smoke-sized where the example supports it).
examples-smoke:
    cargo run --release --example quickstart
    GFS_WAVE_SMOKE=1 cargo run --release --example maintenance_wave
    GFS_POLICY_SMOKE=1 cargo run --release --example churn_policies
    cargo run --release --example crash_recovery
    GFS_MARKET_SMOKE=1 cargo run --release --example spot_market

# Full benchmark suites; writes BENCH_*.json at the repo root.
bench tag="local":
    GFS_BENCH_TAG={{tag}} cargo bench -p gfs-bench

# Hot-path component breakdown for the forecast training loop.
profile-forecast:
    cargo run --release -p gfs-bench --bin profile_forecast

# Build a bench under the `profiling` profile (release codegen + debug
# info) and run it in full mode — the binary perf/flamegraph should
# attach to. Defaults to the fleet-scale suite.
profile bench="fleet_scale":
    cargo bench -p gfs-bench --bench {{bench}} --profile profiling
