//! # GFS — Preemption-aware GPU Cluster Scheduling with Predictive Spot Management
//!
//! A full Rust reproduction of the ASPLOS '26 paper *"GFS: A
//! Preemption-aware Scheduling Framework for GPU Clusters with Predictive
//! Spot Instance Management"* (Duan et al.).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`types`] | ids, time, tasks, GPU models, Table 4 parameters |
//! | [`nn`] | from-scratch reverse-mode autodiff (tensors, layers, Adam) |
//! | [`forecast`] | OrgLinear + 6 baselines, metrics, Gaussian stats |
//! | [`cluster`] | node/GPU state machine and the `Scheduler` trait |
//! | [`trace`] | calibrated synthetic workload & org-demand generators |
//! | [`sched`] | baseline schedulers: YARN-CS, Chronus, Lyra, FGD |
//! | [`core`] | the contribution: GDE, SQA, PTS, `GfsScheduler` |
//! | [`sim`] | deterministic discrete-event simulator + metrics |
//! | [`market`] | closed-loop capacity market: spot prices, autoscaling, cost metering |
//! | [`lab`] | parallel, deterministic experiment grids + aggregation |
//!
//! # Quickstart
//!
//! ```
//! use gfs::prelude::*;
//!
//! // 1. a 16-node (128-GPU) A100 pool
//! let cluster = Cluster::homogeneous(16, GpuModel::A100, 8);
//! // 2. a small calibrated workload
//! let tasks = WorkloadGenerator::new(WorkloadConfig {
//!     hp_tasks: 150,
//!     spot_tasks: 50,
//!     horizon_secs: 24 * HOUR,
//!     ..WorkloadConfig::default()
//! })
//! .generate();
//! // 3. schedule it with GFS
//! let mut gfs = GfsScheduler::with_defaults();
//! let report = run(cluster, &mut gfs, tasks, &SimConfig::default());
//! assert!(report.completion_rate(Priority::Hp) > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gfs_cluster as cluster;
pub use gfs_core as core;
pub use gfs_forecast as forecast;
pub use gfs_lab as lab;
pub use gfs_market as market;
pub use gfs_nn as nn;
pub use gfs_sched as sched;
pub use gfs_sim as sim;
pub use gfs_trace as trace;
pub use gfs_types as types;

pub mod scenario;

/// The most common imports in one place.
pub mod prelude {
    pub use gfs_cluster::{Cluster, Decision, Scheduler, TaskEvent};
    pub use gfs_core::{
        DemandEstimator, GfsScheduler, Pts, PtsScheduler, PtsVariant, SpotQuotaAllocator,
    };
    pub use gfs_forecast::{evaluate, DLinear, Forecaster, LastWeekPeak, OrgLinear, TrainConfig};
    pub use gfs_sched::{Chronus, Fgd, Lyra, YarnCs};
    pub use gfs_sim::{run, SimConfig, SimReport};
    pub use gfs_trace::{WorkloadConfig, WorkloadEra, WorkloadGenerator};
    pub use gfs_types::{
        ClusterEvent, DynamicsPlan, FailureDomain, GfsParams, GpuDemand, GpuModel, NodeId,
        NodeTemplate, OrgId, Priority, SimTime, TaskId, TaskSpec, HOUR,
    };
}
