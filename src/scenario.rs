//! Ready-made experiment scenarios: glue that assembles generators,
//! forecasters and schedulers the way the paper's evaluation does.

use gfs_core::{DemandEstimator, GfsScheduler, PtsScheduler, PtsVariant};
use gfs_forecast::dataset::{OrgDataset, OrgInfo};
use gfs_forecast::{Forecaster, LastWeekPeak, OrgLinear, TrainConfig};
use gfs_sched::PlacementPolicy;
use gfs_trace::{default_attr_vocab, generate_all, paper_orgs};
use gfs_types::GfsParams;

/// Builds the per-organization demand dataset used to train the GDE:
/// `weeks` of hourly history for the four Fig. 4 archetypes.
///
/// # Panics
///
/// Panics if `weeks == 0` or the window does not fit the history.
#[must_use]
pub fn org_template(weeks: usize, input_len: usize, horizon: usize, seed: u64) -> OrgDataset {
    org_template_scaled(weeks, input_len, horizon, seed, None)
}

/// Like [`org_template`], but linearly rescales all series so their summed
/// mean equals `target_total_mean` GPUs. Use this to make the warm-up
/// history consistent with the simulated cluster's expected HP load —
/// otherwise the Fig. 4 absolute levels (~300 GPUs across four orgs) would
/// saturate small clusters and Eq. 9 would never release spot inventory.
///
/// # Panics
///
/// Panics if `weeks == 0` or the window does not fit the history.
#[must_use]
pub fn org_template_scaled(
    weeks: usize,
    input_len: usize,
    horizon: usize,
    seed: u64,
    target_total_mean: Option<f64>,
) -> OrgDataset {
    assert!(weeks > 0, "need at least one week of history");
    let hours = weeks * 168;
    let archs = paper_orgs();
    let mut series = generate_all(&archs, hours, seed);
    if let Some(target) = target_total_mean {
        let total_mean: f64 = series
            .iter()
            .map(|s| s.iter().sum::<f64>() / s.len() as f64)
            .sum();
        if total_mean > 0.0 {
            let k = target / total_mean;
            for s in &mut series {
                for v in s.iter_mut() {
                    *v *= k;
                }
            }
        }
    }
    let orgs = archs
        .iter()
        .map(|a| OrgInfo {
            name: a.name.clone(),
            attrs: a.attrs.clone(),
        })
        .collect();
    OrgDataset::new(
        series,
        orgs,
        default_attr_vocab(),
        Vec::new(),
        input_len,
        horizon,
    )
    .expect("generated history fits the window")
}

/// Which forecaster drives the GDE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GdeModel {
    /// The paper's OrgLinear (§3.2).
    OrgLinear,
    /// The naive last-week-peak heuristic (`GFS-e` ablation, Table 8).
    LastWeekPeak,
}

/// Builds and trains a [`DemandEstimator`] on the template.
#[must_use]
pub fn trained_gde(
    template: &OrgDataset,
    model: GdeModel,
    train: &TrainConfig,
    seed: u64,
) -> DemandEstimator {
    let forecaster: Box<dyn Forecaster> = match model {
        GdeModel::OrgLinear => Box::new(OrgLinear::new(template, seed)),
        GdeModel::LastWeekPeak => Box::new(LastWeekPeak::new()),
    };
    let mut gde = DemandEstimator::new(forecaster, template);
    gde.fit(template, train);
    gde
}

/// Assembles the full GFS scheduler the way §4 deploys it: OrgLinear GDE
/// trained on `weeks` of history scaled to `expected_hp_gpus` (the mean HP
/// demand of the simulated workload), default Table 4 parameters.
#[must_use]
pub fn gfs_full(params: GfsParams, weeks: usize, seed: u64, expected_hp_gpus: f64) -> GfsScheduler {
    gfs_with_gde(params, weeks, seed, expected_hp_gpus, GdeModel::OrgLinear)
}

/// Assembles the `GFS-e` ablation: identical but with the naive peak
/// predictor in the GDE (Table 8).
#[must_use]
pub fn gfs_naive_gde(
    params: GfsParams,
    weeks: usize,
    seed: u64,
    expected_hp_gpus: f64,
) -> GfsScheduler {
    let mut s = gfs_with_gde(
        params,
        weeks,
        seed,
        expected_hp_gpus,
        GdeModel::LastWeekPeak,
    );
    s.set_display_name("GFS-e");
    s
}

fn gfs_with_gde(
    params: GfsParams,
    weeks: usize,
    seed: u64,
    expected_hp_gpus: f64,
    model: GdeModel,
) -> GfsScheduler {
    gfs_with_gde_policy(
        params,
        weeks,
        seed,
        expected_hp_gpus,
        model,
        PlacementPolicy::naive(),
    )
}

fn gfs_with_gde_policy(
    params: GfsParams,
    weeks: usize,
    seed: u64,
    expected_hp_gpus: f64,
    model: GdeModel,
    policy: PlacementPolicy,
) -> GfsScheduler {
    let horizon = (params.guarantee_hours as usize).max(4);
    let template = org_template_scaled(weeks, 168, horizon, seed, Some(expected_hp_gpus));
    let cfg = TrainConfig {
        epochs: 15,
        stride: 7,
        seed,
        ..TrainConfig::default()
    };
    let gde = trained_gde(&template, model, &cfg, seed);
    GfsScheduler::with_policy(params, PtsVariant::Full, Some(gde), policy)
}

/// Grid-ready constructor for the full GFS framework (§4 deployment):
/// each run trains an OrgLinear GDE on `weeks` of history scaled to
/// `hp_load` of the cell's cluster capacity, seeded with the run seed and
/// configured with the cell's parameter override.
///
/// ```no_run
/// use gfs::lab::{ClusterShape, Grid, SchedulerSpec, Threads, WorkloadAxis};
/// use gfs::scenario;
/// use gfs_trace::WorkloadConfig;
///
/// let grid = Grid::new()
///     .schedulers(SchedulerSpec::baselines())
///     .scheduler(scenario::gfs_spec(3, 0.6))
///     .shape(ClusterShape::a100(32, 8))
///     .workload(WorkloadAxis::generated("medium", WorkloadConfig::default()))
///     .seeds([1, 2, 3]);
/// let result = grid.run(Threads::Auto);
/// ```
#[must_use]
pub fn gfs_spec(weeks: usize, hp_load: f64) -> gfs_lab::SchedulerSpec {
    gfs_lab::SchedulerSpec::new("GFS", move |ctx| {
        Box::new(gfs_with_gde_policy(
            ctx.params.clone(),
            weeks,
            ctx.seed,
            hp_load * ctx.shape.capacity_gpus(),
            GdeModel::OrgLinear,
            ctx.policy.clone(),
        ))
    })
}

/// Grid-ready constructor for the `GFS-e` ablation (naive peak predictor
/// in the GDE, Table 8).
#[must_use]
pub fn gfs_naive_spec(weeks: usize, hp_load: f64) -> gfs_lab::SchedulerSpec {
    gfs_lab::SchedulerSpec::new("GFS-e", move |ctx| {
        let mut s = gfs_with_gde_policy(
            ctx.params.clone(),
            weeks,
            ctx.seed,
            hp_load * ctx.shape.capacity_gpus(),
            GdeModel::LastWeekPeak,
            ctx.policy.clone(),
        );
        s.set_display_name("GFS-e");
        Box::new(s)
    })
}

/// Grid-ready constructor for the estimator-free framework
/// (`GfsScheduler::with_defaults`, but honouring the cell's parameter
/// override): the quota degenerates to "all currently idle GPUs".
#[must_use]
pub fn gfs_no_gde_spec() -> gfs_lab::SchedulerSpec {
    // labelled like the scheduler names itself, so an ablation grid holding
    // both this and `gfs_spec` produces distinguishable rows
    gfs_lab::SchedulerSpec::new("GFS (no GDE)", |ctx| {
        Box::new(GfsScheduler::with_policy(
            ctx.params.clone(),
            PtsVariant::Full,
            None,
            ctx.policy.clone(),
        ))
    })
}

/// Grid-ready constructor for the bare PTS placement engine (no quota, no
/// estimator): the placement-policy ablation row. The cell's
/// [`PolicyAxis`](gfs_lab::PolicyAxis) point configures its placement, so
/// a grid comparing `naive` against `churn-aware` isolates exactly what
/// failure-domain spreading, drain avoidance and reliability scoring
/// contribute.
#[must_use]
pub fn pts_spec() -> gfs_lab::SchedulerSpec {
    gfs_lab::SchedulerSpec::new("PTS", |ctx| {
        Box::new(PtsScheduler::with_policy(
            ctx.params.clone(),
            ctx.policy.clone(),
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_shapes() {
        let t = org_template(3, 168, 4, 1);
        assert_eq!(t.num_orgs(), 4);
        assert_eq!(t.len_hours(), 3 * 168);
        assert_eq!(t.horizon(), 4);
    }

    #[test]
    fn naive_gde_scheduler_is_named_gfs_e() {
        use gfs_cluster::Scheduler;
        let s = gfs_naive_gde(GfsParams::default(), 2, 1, 64.0);
        assert_eq!(s.name(), "GFS-e");
    }

    #[test]
    #[should_panic(expected = "at least one week")]
    fn zero_weeks_rejected() {
        let _ = org_template(0, 168, 4, 1);
    }

    #[test]
    fn grid_specs_build_named_schedulers() {
        use gfs_lab::{ClusterShape, RunContext};
        let shape = ClusterShape::a100(4, 8);
        let params = GfsParams::default();
        let policy = gfs_sched::PlacementPolicy::naive();
        let ctx = RunContext {
            shape: &shape,
            workload: "tiny",
            dynamics: "none",
            market: "none",
            policy: &policy,
            params: &params,
            seed: 1,
        };
        let s = gfs_no_gde_spec().build(&ctx);
        assert_eq!(s.name(), "GFS (no GDE)");
        assert_eq!(gfs_naive_spec(2, 0.6).name(), "GFS-e");
    }
}
